(* R1 — what the full-path resolution cache buys (PR 7).

   §3.1.1 argues a POSIX path is "simply one name among many": the flat
   stack resolves /a/b/.../leaf with ONE index descent regardless of
   depth, while the hierarchical baseline walks component-at-a-time —
   the C1/C2 story. The pathcache (DESIGN.md §11) attacks the same gap
   from the other side: memoize the walk, so a WARM hierarchical
   resolve is one hashed hit plus one inode-table fetch.

   Per depth d we build a d-deep chain with a leaf file on both stacks
   and measure the per-resolve cost in B-tree root-to-leaf descents
   (the depth-independent unit C1 established) plus wall clock:

     hier/cold    baseline, pathcache disabled  (the seed's walk)
     hier/warm    baseline, pathcache hit
     native       Fs.lookup_one on the POSIX tag (no veneer cache)
     veneer/warm  POSIX veneer pathcache hit    (zero descents)

   Asserted EVERY run (counters, so smoke and CI enforce it too):
   at depth >= 8 the warm hierarchical resolve costs at most 2x the
   native descent count, the cold walk costs at least 5x native, and
   the native tag path still beats the cold walk outright — the cache
   narrows the gap; it does not beat the design. *)

module Device = Hfad_blockdev.Device
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module H = Hfad_hierfs.Hierfs
module P = Hfad_posix.Posix_fs
open Bench_util

let chain depth =
  String.concat "" (List.init depth (fun i -> Printf.sprintf "/d%02d" i))

let leaf depth = chain depth ^ "/leaf.txt"

(* Per-resolve B-tree descents and median wall clock over [reps]. *)
let measure ~reps f =
  ignore (f ());
  (* warm page cache / pathcache identically for every variant *)
  let (), deltas =
    counters_of (fun () ->
        for _ = 1 to reps do
          ignore (Sys.opaque_identity (f ()))
        done)
  in
  let per name = float_of_int (counter deltas name) /. float_of_int reps in
  (per "btree.descents", per "hierfs.components_walked", median_us ~n:11 f)

let hier_costs ~depth ~reps ~pathcache_entries =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let h =
    H.format ~config:(H.Config.v ~cache_pages:2048 ~pathcache_entries ()) dev
  in
  H.mkdir_p h (chain depth);
  ignore (H.create_file ~content:"payload" h (leaf depth));
  let costs = measure ~reps (fun () -> H.resolve h (leaf depth)) in
  H.close h;
  costs

let flat_costs ~depth ~reps =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let fs =
    Fs.format ~config:(Fs.Config.v ~cache_pages:2048 ~index_mode:Fs.Off ()) dev
  in
  let p = P.mount fs in
  P.mkdir_p_exn p (chain depth);
  ignore (P.create_file_exn ~content:"payload" p (leaf depth));
  (* native: the raw one-descent tag lookup, no memo in front *)
  let native =
    measure ~reps (fun () ->
        match Fs.lookup_one fs [ (Tag.Posix, leaf depth) ] with
        | Some oid -> oid
        | None -> assert false)
  in
  let veneer_warm = measure ~reps (fun () -> P.resolve p (leaf depth)) in
  P.unmount p;
  (native, veneer_warm)

let run () =
  heading "R1: deep-path resolution, cold walk vs pathcache vs native lookup";
  say "per-resolve B-tree descents (depth-independent unit from C1) and";
  say "median wall clock; hier/warm and veneer/warm hit the full-path memo.";
  say "";
  let reps = scaled 64 ~smoke:8 in
  let depths = if !smoke then [ 2; 8 ] else [ 2; 4; 8; 12; 16 ] in
  let results =
    List.map
      (fun depth ->
        let cd, cc, cus = hier_costs ~depth ~reps ~pathcache_entries:0 in
        let wd, wc, wus = hier_costs ~depth ~reps ~pathcache_entries:512 in
        let (nd, _, nus), (vd, _, vus) = flat_costs ~depth ~reps in
        (depth, (cd, cc, cus), (wd, wc, wus), (nd, nus), (vd, vus)))
      depths
  in
  table
    ([
       [
         "depth"; "variant"; "descents/op"; "components/op"; "median";
       ];
     ]
    @ List.concat_map
        (fun (depth, (cd, cc, cus), (wd, wc, wus), (nd, nus), (vd, vus)) ->
          [
            [ fmt_int depth; "hier/cold"; fmt_f2 cd; fmt_f2 cc; fmt_us cus ];
            [ ""; "hier/warm"; fmt_f2 wd; fmt_f2 wc; fmt_us wus ];
            [ ""; "native"; fmt_f2 nd; "0.00"; fmt_us nus ];
            [ ""; "veneer/warm"; fmt_f2 vd; "0.00"; fmt_us vus ];
          ])
        results);
  say "";
  (* The contract this bench exists to enforce, on every run. *)
  List.iter
    (fun (depth, (cd, _, _), (wd, _, _), (nd, _), _) ->
      if depth >= 8 then begin
        if wd > 2.0 *. nd then
          failwith
            (Printf.sprintf
               "R1: depth %d warm hier resolve costs %.2f descents/op, > 2x \
                native (%.2f)"
               depth wd nd);
        if cd < 5.0 *. nd then
          failwith
            (Printf.sprintf
               "R1: depth %d cold hier walk costs only %.2f descents/op, < 5x \
                native (%.2f) — the baseline stopped being a baseline"
               depth cd nd);
        if cd <= nd then
          failwith
            (Printf.sprintf
               "R1: depth %d native lookup (%.2f) no longer beats the cold \
                walk (%.2f)"
               depth nd cd)
      end)
    results;
  say "asserted: at depth >= 8, warm hier <= 2x native descents, cold hier";
  say ">= 5x native, and the native tag path still wins cold.";
  emit_json ~id:"R1"
    [
      ("experiment", Jstring "R1");
      ("unit", Jstring "btree descents per resolve; wall clock us");
      ("reps", Jint reps);
      ( "depths",
        Jlist
          (List.map
             (fun (depth, (cd, cc, cus), (wd, wc, wus), (nd, nus), (vd, vus)) ->
               Jobj
                 [
                   ("depth", Jint depth);
                   ( "hier_cold",
                     Jobj
                       [
                         ("descents_per_op", Jfloat cd);
                         ("components_per_op", Jfloat cc);
                         ("median_us", Jfloat cus);
                       ] );
                   ( "hier_warm",
                     Jobj
                       [
                         ("descents_per_op", Jfloat wd);
                         ("components_per_op", Jfloat wc);
                         ("median_us", Jfloat wus);
                       ] );
                   ( "native",
                     Jobj
                       [
                         ("descents_per_op", Jfloat nd);
                         ("median_us", Jfloat nus);
                       ] );
                   ( "veneer_warm",
                     Jobj
                       [
                         ("descents_per_op", Jfloat vd);
                         ("median_us", Jfloat vus);
                       ] );
                 ])
             results) );
      ( "asserted",
        Jobj
          [
            ("warm_hier_within_2x_native_at_depth_ge8", Jbool true);
            ("cold_hier_at_least_5x_native_at_depth_ge8", Jbool true);
            ("native_beats_cold_walk", Jbool true);
          ] );
    ]
