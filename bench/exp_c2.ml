(* C2 — §2.3's concurrency claim: "/home/nick and /home/margo are
   functionally unrelated most of the time, yet accessing them requires
   synchronizing read access through a shared ancestor directory."

   Eight users each own a private directory of 64 files. Real
   [Domain.spawn] workers resolve random paths strictly inside their own
   user's subtree — a perfectly partitionable workload — at 1, 2, 4 and
   8 domains. The hierarchical walk still locks "/" and "/home" on every
   single resolution; hFAD's one-descent resolution holds only the
   shared (reader) side of the stack-wide rwlock, which admits any
   number of concurrent readers.

   The structural metrics (exact, machine-independent): namespace lock
   acquisitions, acquisitions on shared ancestors, observed waits, and
   — on the hFAD side — the rwlock's shared/exclusive acquisition and
   wait counters. The acceptance condition is printed last: under pure
   reader load the hFAD stack must report {e zero} exclusive-side
   acquisitions and waits at every domain count. Wall-clock throughput,
   per-domain throughput and the scalability curve are also printed;
   on a single-core container the speedup column stays ~1.0x and the
   lock footprint is the portable result. *)

module Device = Hfad_blockdev.Device
module Rng = Hfad_util.Rng
module Rwlock = Hfad_util.Rwlock
module Fs = Hfad.Fs
module P = Hfad_posix.Posix_fs
module H = Hfad_hierfs.Hierfs
open Bench_util

let users = 8
let files_per_user = 64
let total_ops () = scaled 16_000 ~smoke:400
let domain_counts () = scaled [ 1; 2; 4; 8 ] ~smoke:[ 1; 2 ]

let path u f = Printf.sprintf "/home/user%d/file%02d.txt" u f

let build_hier () =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  (* pathcache off: this experiment reproduces the paper's claim about
     the uncached component walk; R1 measures the memo. *)
  let h = H.format ~config:(H.Config.v ~cache_pages:4096 ~pathcache_entries:0 ()) dev in
  for u = 0 to users - 1 do
    H.mkdir_p h (Printf.sprintf "/home/user%d" u);
    for f = 0 to files_per_user - 1 do
      ignore (H.create_file ~content:"x" h (path u f))
    done
  done;
  (* Warm caches so the parallel phase mutates nothing. *)
  for u = 0 to users - 1 do
    ignore (H.resolve h (path u 0))
  done;
  h

let build_hfad () =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let fs = Fs.format ~config:(Fs.Config.v ~cache_pages:4096 ~index_mode:Fs.Off ()) dev in
  (* pathcache off on this side too: C2 counts the seed's per-resolve
     lock/descent footprint; R1 measures the memo. *)
  let posix = P.mount ~pathcache_entries:0 fs in
  for u = 0 to users - 1 do
    P.mkdir_p_exn posix (Printf.sprintf "/home/user%d" u);
    for f = 0 to files_per_user - 1 do
      ignore (P.create_file_exn ~content:"x" posix (path u f))
    done
  done;
  ignore (P.resolve posix (path 0 0));
  (fs, posix)

(* [total_ops] resolves split across [domains] real domains; returns
   aggregate resolves/s. Worker [d] stays inside user [d]'s subtree. *)
let run_parallel ~domains f =
  let ops_each = total_ops () / domains in
  let _, ms =
    time_ms (fun () ->
        let spawned =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  let rng = Rng.create (Int64.of_int (1000 + d)) in
                  for _ = 1 to ops_each do
                    f d rng
                  done))
        in
        List.iter Domain.join spawned)
  in
  float_of_int (ops_each * domains) /. ms *. 1000.

let run () =
  heading "C2: parallel resolution through a shared ancestor";
  say "  (%d hardware core(s) available to domains)"
    (Domain.recommended_domain_count ());
  let h = build_hier () in
  let fs, posix = build_hfad () in
  let resolve_hier d rng =
    ignore (H.resolve h (path d (Rng.int rng files_per_user)))
  in
  let resolve_hfad d rng =
    ignore (P.resolve posix (path d (Rng.int rng files_per_user)))
  in
  let lock = Fs.rwlock fs in
  let hier_rows = ref [] in
  let hfad_rows = ref [] in
  let json_rows = ref [] in
  let base_hier = ref 1. in
  let base_hfad = ref 1. in
  let excl_acq_seen = ref 0 in
  let excl_waits_seen = ref 0 in
  List.iter
    (fun domains ->
      (* Hierarchical baseline: per-inode namespace locks on the walk.
         Each resolution locks every directory on its path — "/",
         "/home", "/home/userX" — the first two are shared ancestors. *)
      H.reset_lock_stats h;
      let tput = run_parallel ~domains resolve_hier in
      let acq, waits = H.lock_stats h in
      let shared_ancestor = 2 * total_ops () in
      if domains = 1 then base_hier := tput;
      hier_rows :=
        [
          fmt_int domains;
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%.0f" (tput /. float_of_int domains);
          fmt_ratio (tput /. !base_hier);
          fmt_int acq;
          fmt_int shared_ancestor;
          fmt_int waits;
        ]
        :: !hier_rows;
      json_rows :=
        Jobj
          [
            ("system", Jstring "hierarchical");
            ("domains", Jint domains);
            ("resolves_per_s", Jfloat tput);
            ("per_domain_per_s", Jfloat (tput /. float_of_int domains));
            ("speedup", Jfloat (tput /. !base_hier));
            ("namespace_lock_acquisitions", Jint acq);
            ("shared_ancestor_acquisitions", Jint shared_ancestor);
            ("lock_waits", Jint waits);
          ]
        :: !json_rows;
      (* hFAD: one stack-wide rwlock, readers take only the shared
         side. Exclusive counters must stay at zero. *)
      Rwlock.reset_stats lock;
      let tput = run_parallel ~domains resolve_hfad in
      let s = Rwlock.stats lock in
      if domains = 1 then base_hfad := tput;
      if domains >= 4 then begin
        excl_acq_seen := !excl_acq_seen + s.Rwlock.exclusive_acquisitions;
        excl_waits_seen := !excl_waits_seen + s.Rwlock.exclusive_waits
      end;
      hfad_rows :=
        [
          fmt_int domains;
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%.0f" (tput /. float_of_int domains);
          fmt_ratio (tput /. !base_hfad);
          fmt_int s.Rwlock.shared_acquisitions;
          fmt_int s.Rwlock.shared_waits;
          fmt_int s.Rwlock.exclusive_acquisitions;
          fmt_int s.Rwlock.exclusive_waits;
        ]
        :: !hfad_rows;
      json_rows :=
        Jobj
          [
            ("system", Jstring "hfad");
            ("domains", Jint domains);
            ("resolves_per_s", Jfloat tput);
            ("per_domain_per_s", Jfloat (tput /. float_of_int domains));
            ("speedup", Jfloat (tput /. !base_hfad));
            ("shared_acquisitions", Jint s.Rwlock.shared_acquisitions);
            ("shared_waits", Jint s.Rwlock.shared_waits);
            ("exclusive_acquisitions", Jint s.Rwlock.exclusive_acquisitions);
            ("exclusive_waits", Jint s.Rwlock.exclusive_waits);
          ]
        :: !json_rows)
    (domain_counts ());
  say "";
  say "hierarchical baseline (per-inode namespace locks on every walk):";
  table
    ([
       [
         "domains"; "resolves/s"; "/s/domain"; "speedup"; "ns locks";
         "thru shared ancestors"; "lock waits";
       ];
     ]
    @ List.rev !hier_rows);
  say "";
  say "hFAD (stack-wide rwlock, resolution holds the shared side only):";
  table
    ([
       [
         "domains"; "resolves/s"; "/s/domain"; "speedup"; "shared acq";
         "shared waits"; "excl acq"; "excl waits";
       ];
     ]
    @ List.rev !hfad_rows);
  say "";
  say
    "acceptance (pure readers, 4+ domains): hFAD exclusive acquisitions = %d, \
     exclusive waits = %d%s"
    !excl_acq_seen !excl_waits_seen
    (if !excl_acq_seen = 0 && !excl_waits_seen = 0 then " -- OK (expected 0/0)"
     else " -- UNEXPECTED, wanted 0/0");
  say "expected shape: hierarchical takes 3 namespace locks per resolve (2 on";
  say "shared ancestors) and accumulates waits once domains > 1; hFAD's";
  say "exclusive side stays untouched, so readers never exclude each other.";
  say "(single-core container: throughput scaling not observable here)";
  emit_json ~id:"C2"
    [
      ("experiment", Jstring "C2");
      ( "claim",
        Jstring
          "parallel resolution: shared-ancestor locks vs shared-side rwlock" );
      ("cores", Jint (Domain.recommended_domain_count ()));
      ( "config",
        Jobj
          [
            ("users", Jint users);
            ("files_per_user", Jint files_per_user);
            ("total_ops", Jint (total_ops ()));
          ] );
      ("rows", Jlist (List.rev !json_rows));
      ( "acceptance",
        Jobj
          [
            ("pure_reader_exclusive_acquisitions", Jint !excl_acq_seen);
            ("pure_reader_exclusive_waits", Jint !excl_waits_seen);
            ("ok", Jbool (!excl_acq_seen = 0 && !excl_waits_seen = 0));
          ] );
    ]
