(* C5 — §1's motivation: three orders of magnitude more data under one
   namespace. "Users have learned to find data by describing what they
   want instead of where it lives."

   Question: "all photos taken in hawaii", asked over growing photo
   libraries. Three ways to answer it:

   - hFAD: one conjunctive index lookup (UDEF/hawaii);
   - hierarchical + desktop search: term lookup returns pathnames, each
     then resolved through the namespace;
   - hierarchical alone: walk the whole tree and filter by path
     component (what `find` does when the hierarchy doesn't match the
     question).

   Expected: scan is linear in corpus size; the indexed answers are
   near-flat; hFAD skips the per-hit namespace walk the desktop-search
   stack pays. *)

module Device = Hfad_blockdev.Device
module Rng = Hfad_util.Rng
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module P = Hfad_posix.Posix_fs
module H = Hfad_hierfs.Hierfs
module Search = Hfad_hierfs.Desktop_search
module Corpus = Hfad_workload.Corpus
module Load = Hfad_workload.Load
module Strx = Hfad_util.Strx
open Bench_util

let build count =
  let photos = Corpus.photos (Rng.create 77L) ~count in
  let dev = Device.create ~block_size:4096 ~blocks:262144 () in
  let fs = Fs.format ~config:(Fs.Config.v ~cache_pages:8192 ~index_mode:Fs.Eager ()) dev in
  let posix = P.mount fs in
  let _ = Load.photos_into_hfad posix photos in
  let dev2 = Device.create ~block_size:4096 ~blocks:262144 () in
  let h = H.format ~config:(H.Config.v ~cache_pages:8192 ()) dev2 in
  Load.photos_into_hierfs h photos;
  let ds = Search.create h in
  ignore (Search.index_tree ds "/");
  (fs, h, ds)

let run () =
  heading "C5: find-by-attribute vs corpus size (query: place = hawaii)";
  let rows =
    List.map
      (fun count ->
        let fs, h, ds = build count in
        let hits = ref 0 in
        let hfad_us =
          median_us ~n:7 (fun () ->
              hits := List.length (Fs.lookup fs [ (Tag.Udef, "hawaii") ]))
        in
        let ds_us =
          median_us ~n:7 (fun () ->
              ignore (Search.search_and_read ds "hawaii" ~bytes_per_hit:1))
        in
        let scan_hits = ref 0 in
        let scan_us =
          median_us ~n:3 (fun () ->
              scan_hits :=
                List.length
                  (List.filter
                     (fun path ->
                       (* filter by path component, `find`-style *)
                       Strx.starts_with ~prefix:"/photos/" path
                       && List.exists (String.equal "hawaii")
                            (String.split_on_char '/' path))
                     (H.walk_files h "/")))
        in
        [
          fmt_int count;
          fmt_int !hits;
          fmt_us hfad_us;
          fmt_us ds_us;
          fmt_us scan_us;
          fmt_ratio (scan_us /. hfad_us);
        ])
      (scaled [ 500; 2000; 8000 ] ~smoke:[ 100; 200 ])
  in
  table
    ([
       [
         "photos"; "hits"; "hFAD lookup"; "desktop search"; "tree scan";
         "scan/hFAD";
       ];
     ]
    @ rows);
  say "";
  say "expected shape: scan grows linearly with the library; both indexed";
  say "paths stay near-flat, with hFAD cheapest (no per-hit namespace walk)."
