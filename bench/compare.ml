(* Bench regression gate: fresh smoke BENCH_*.json vs committed baselines.

   Usage:  dune exec bench/compare.exe -- bench/baselines

   For every [BENCH_<id>.json] in the baselines directory there must be
   a same-named fresh file in the current directory (CI runs
   `main.exe --smoke --json $(main.exe --list --json)` first). The gate
   auto-extends: committing a new baseline file adds it to the matrix
   with no CI edit.

   Two kinds of check, both against the BASELINE's value (not an
   absolute ideal — smoke scale legitimately misses some full-scale
   acceptance shapes, e.g. W2's monotonicity, and that must not fail
   the gate as long as it held at seeding time):

   - every boolean the baseline records as [true] must still be [true]
     — an acceptance flag may not regress;
   - each numeric metric named in [rules] (deterministic or
     near-deterministic counts and modeled device time — never wall
     clock, which measures the CI host) must satisfy
     [fresh <= base * (1 + tolerance)]; lower is better for all of
     them, so improvements pass silently.

   Anything else in the JSON (wall-clock timings, percentiles,
   throughput) is ignored: gating those on shared CI runners gates the
   weather. Exit 0 all green, 1 on any regression or missing file. *)

(* --- minimal JSON ---------------------------------------------------

   The repo deliberately has no JSON dependency; bench_util hand-writes
   its output, and this is the matching hand-rolled reader for that
   subset (objects, arrays, strings with \-escapes, numbers, booleans,
   null). *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Bad_json of string

let parse (s : string) : v =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
                 (* bench output is ASCII; keep escapes opaque *)
                 if !pos + 4 >= n then fail "short \\u escape";
                 Buffer.add_string b ("\\u" ^ String.sub s (!pos + 1) 4);
                 pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else Arr (elements [])
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "expected a value"
  and members acc =
    skip_ws ();
    let key = string_lit () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
        advance ();
        members ((key, v) :: acc)
    | Some '}' ->
        advance ();
        List.rev ((key, v) :: acc)
    | _ -> fail "expected , or }"
  and elements acc =
    let v = value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
        advance ();
        elements (v :: acc)
    | Some ']' ->
        advance ();
        List.rev (v :: acc)
    | _ -> fail "expected , or ]"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- paths ---------------------------------------------------------- *)

(* A leaf's address: object keys and array indices, dot-joined
   ("rows.3.device_model_ms"). Patterns use "*" as a one-segment
   wildcard. *)

let path_to_string path = String.concat "." (List.rev path)

let pattern_matches pattern path =
  let ps = String.split_on_char '.' pattern in
  let rec go ps qs =
    match (ps, qs) with
    | [], [] -> true
    | p :: ps, q :: qs -> (p = "*" || p = q) && go ps qs
    | _ -> false
  in
  go ps (List.rev path)

let rec leaves path v acc =
  match v with
  | Obj kvs ->
      List.fold_left (fun acc (k, v) -> leaves (k :: path) v acc) acc kvs
  | Arr vs ->
      let acc, _ =
        List.fold_left
          (fun (acc, i) v -> (leaves (string_of_int i :: path) v acc, i + 1))
          (acc, 0) vs
      in
      acc
  | _ -> (path, v) :: acc

let lookup tree path =
  let rec go v = function
    | [] -> Some v
    | seg :: rest -> (
        match v with
        | Obj kvs -> Option.bind (List.assoc_opt seg kvs) (fun v -> go v rest)
        | Arr vs ->
            Option.bind (int_of_string_opt seg) (fun i ->
                Option.bind (List.nth_opt vs i) (fun v -> go v rest))
        | _ -> None)
  in
  go tree (List.rev path)

(* --- tolerance rules ------------------------------------------------

   (baseline basename, leaf-path pattern, relative tolerance). All
   lower-is-better. Only deterministic / near-deterministic metrics:
   structural counts (descents, device reads/writes) and modeled device
   time. Wall clock, ops/s and latency percentiles are NEVER gated. *)

let rules =
  [
    (* B-tree descent counts are fully deterministic; any growth is a
       real resolution regression. *)
    ("BENCH_R1.json", "depths.*.*.descents_per_op", 0.05);
    (* Pager miss traffic depends slightly on domain scheduling; gate
       the order of magnitude, not the exact interleaving. *)
    ("BENCH_W2.json", "rows.*.device_reads", 0.50);
    ("BENCH_W2.json", "rows.*.device_writes", 0.50);
    (* Modeled commit cost per row; batch composition wobbles a little
       with scheduling but the model itself is deterministic. *)
    ("BENCH_S1.json", "rows.*.device_model_ms", 0.30);
    ("BENCH_S1.json", "sync_baseline.device_model_ms", 0.30);
    (* Single-threaded deterministic op stream: modeled device time and
       write counts move only if the txn commit path itself changes. *)
    ("BENCH_T2.json", "rows.*.device_model_ms", 0.10);
    ("BENCH_T2.json", "rows.*.device_writes", 0.10);
    (* S1's modeled commit cost, per telemetry arm. The observer's
       scrapes are read-only and never touch the device, so telemetry_on
       growing past this means telemetry started costing device work. *)
    ("BENCH_O2.json", "telemetry_off.device_model_ms", 0.30);
    ("BENCH_O2.json", "telemetry_on.device_model_ms", 0.30);
  ]

(* Booleans derived from wall-clock shapes are not meaningful at smoke
   scale (smoke is a bit-rot gate, not a measurement) — W2's
   monotonicity legitimately flips run to run at 60 ops/writer. Listed
   here they are skipped; everything else boolean is gated. S1's flags
   stay gated: S1 hard-fails its own run on them, so the baseline
   can only ever record true. *)
let noisy_bools =
  [ ("BENCH_W2.json", "acceptance.ops_per_s_monotone_in_shards") ]

(* --- the gate ------------------------------------------------------- *)

let failures = ref 0

let problem fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "  FAIL %s\n" msg)
    fmt

let check_file ~baseline_dir name =
  let read_json path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    parse raw
  in
  Printf.printf "%s:\n" name;
  let base = read_json (Filename.concat baseline_dir name) in
  match read_json name with
  | exception Sys_error _ ->
      problem "fresh %s missing (bench did not produce it)" name
  | exception Bad_json msg -> problem "fresh %s unreadable: %s" name msg
  | fresh ->
      let checked = ref 0 in
      List.iter
        (fun (path, bv) ->
          let where = path_to_string path in
          match bv with
          | Bool true
            when List.exists
                   (fun (file, pat) -> file = name && pattern_matches pat path)
                   noisy_bools ->
              ()
          | Bool true -> (
              incr checked;
              match lookup fresh path with
              | Some (Bool true) -> ()
              | Some (Bool false) ->
                  problem "%s: acceptance regressed true -> false" where
              | _ -> problem "%s: boolean missing from fresh output" where)
          | Bool false | Null | Str _ -> ()
          | Num bn -> (
              match
                List.find_opt
                  (fun (file, pat, _) ->
                    file = name && pattern_matches pat path)
                  rules
              with
              | None -> ()
              | Some (_, _, tol) -> (
                  incr checked;
                  let limit = (bn *. (1.0 +. tol)) +. 1e-9 in
                  match lookup fresh path with
                  | Some (Num fn) when fn <= limit -> ()
                  | Some (Num fn) ->
                      problem "%s: %.4g > %.4g (baseline %.4g +%d%%)" where
                        fn limit bn
                        (int_of_float (tol *. 100.0))
                  | _ -> problem "%s: metric missing from fresh output" where))
          | Obj _ | Arr _ -> assert false (* leaves only *))
        (leaves [] base []);
      Printf.printf "  %d checks\n" !checked

let () =
  let baseline_dir =
    match Array.to_list Sys.argv with
    | [ _; dir ] -> dir
    | _ ->
        prerr_endline "usage: compare.exe BASELINE_DIR  (fresh files in cwd)";
        exit 2
  in
  let baselines =
    Sys.readdir baseline_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if baselines = [] then begin
    Printf.eprintf "no BENCH_*.json baselines in %s\n" baseline_dir;
    exit 2
  end;
  List.iter (check_file ~baseline_dir) baselines;
  if !failures > 0 then begin
    Printf.printf "bench compare: %d regression(s)\n" !failures;
    exit 1
  end
  else Printf.printf "bench compare: OK (%d baselines)\n" (List.length baselines)
