(* Shared helpers for the experiment harness: aligned table printing,
   wall-clock timing, and counter deltas. *)

module Registry = Hfad_metrics.Registry

let say fmt = Format.printf (fmt ^^ "@.")

(* --- smoke mode ----------------------------------------------------

   [--smoke] runs every experiment end-to-end at a tiny problem size: a
   bit-rot gate for CI, not a measurement. Experiments pick their sizes
   through [scaled], so the full-size constants stay next to the code
   they parameterize. *)

let smoke = ref false

(* [scaled full ~smoke:s] is [full] normally and [s] under [--smoke]. *)
let scaled full ~smoke:s = if !smoke then s else full

let heading title =
  say "";
  say "==== %s ====" title

(* Print rows as an aligned table; the first row is the header. *)
let table rows =
  match rows with
  | [] -> ()
  | header :: _ ->
      let columns = List.length header in
      let width col =
        List.fold_left
          (fun acc row ->
            match List.nth_opt row col with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 rows
      in
      let widths = List.init columns width in
      let print_row row =
        let cells =
          List.mapi
            (fun i cell ->
              let pad = List.nth widths i - String.length cell in
              cell ^ String.make (max 0 pad) ' ')
            row
        in
        say "  %s" (String.concat "  " cells)
      in
      print_row header;
      print_row (List.map (fun w -> String.make w '-') widths);
      List.iter print_row (List.tl rows)

(* Milliseconds of wall clock for one run of [f]. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, 1000. *. (Unix.gettimeofday () -. t0))

(* Median wall time in microseconds over [n] runs. *)
let median_us ?(n = 21) f =
  let samples =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        1_000_000. *. (Unix.gettimeofday () -. t0))
  in
  List.nth (List.sort compare samples) (n / 2)

(* Global-counter delta produced by one run of [f]. *)
let counters_of f =
  let snap = Registry.snapshot Registry.global in
  let result = f () in
  (result, Registry.diff Registry.global snap)

let counter deltas name = Option.value ~default:0 (List.assoc_opt name deltas)

(* --- workload generators -------------------------------------------

   Shared by the write benches (W1 drives one stack, W2 a sharded one)
   so both storms are made of the same material: deterministic scattered
   overwrites, fixed tenant names, and a Zipf popularity skew. *)

module Workload = struct
  (* Deterministic scatter: op [i] re-dirties roughly one page of one
     object, cycling through the object set. *)
  let scatter_target ~objects ~object_bytes ~write_bytes i =
    (i mod objects, i * 5237 mod (object_bytes - write_bytes))

  (* Tenant identities for multi-tenant storms; the value doubles as
     the placement-tag value, so a tenant's objects share a shard. *)
  let tenant_name k = Printf.sprintf "tenant%02d" k

  (* CDF of Zipf(skew) over ranks 1..n (a few hot objects, a long
     cold tail — the shape real per-tenant traffic has). *)
  let zipf_cdf ~n ~skew =
    let w =
      Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew)
    in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w

  (* Rank (0-based) for a uniform draw [u] in [0, 1). *)
  let zipf_pick cdf u =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length cdf - 1)

  (* Nearest-rank percentile, [p] in (0, 1]. *)
  let percentile p samples =
    let a = Array.copy samples in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.0
    else
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) rank))
end

let fmt_int = string_of_int
let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_us v = Printf.sprintf "%.1fus" v
let fmt_ratio v = Printf.sprintf "%.1fx" v

(* --- machine-readable output --------------------------------------

   Hand-rolled JSON (no external dependency): enough for flat records
   of numbers, strings and nested lists/objects. Experiments call
   [emit_json ~id fields]; when the harness was started with [--json]
   this writes BENCH_<id>.json next to the working directory. *)

type json =
  | Jint of int
  | Jfloat of float
  | Jbool of bool
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec json_to_buf b indent j =
  let pad n = String.make n ' ' in
  match j with
  | Jint i -> Buffer.add_string b (string_of_int i)
  | Jfloat f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Jbool v -> Buffer.add_string b (if v then "true" else "false")
  | Jstring s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s))
  | Jlist [] -> Buffer.add_string b "[]"
  | Jlist items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          json_to_buf b (indent + 2) item)
        items;
      Buffer.add_string b (Printf.sprintf "\n%s]" (pad indent))
  | Jobj [] -> Buffer.add_string b "{}"
  | Jobj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b
            (Printf.sprintf "%s\"%s\": " (pad (indent + 2)) (json_escape k));
          json_to_buf b (indent + 2) v)
        fields;
      Buffer.add_string b (Printf.sprintf "\n%s}" (pad indent))

let json_to_string j =
  let b = Buffer.create 1024 in
  json_to_buf b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

let json_enabled = ref false

let emit_json ~id fields =
  if !json_enabled then begin
    let file = Printf.sprintf "BENCH_%s.json" id in
    let oc = open_out file in
    output_string oc (json_to_string (Jobj fields));
    close_out oc;
    say "  [wrote %s]" file
  end
