(* C1 — §2.3's headline claim: "At a minimum, we encountered four index
   traversals" between a search term and its data bytes on the
   hierarchical stack, growing with path depth; hFAD needs a constant,
   small number regardless of namespace shape.

   Setup per depth d: 256 files with identical filler text live at the
   bottom of a d-deep directory chain; one of them additionally contains
   a unique needle term. We then drive one search for the needle all the
   way to its first data bytes and count every index structure touched.

   "Traversals" = B-tree root-to-leaf descents (search index, directory
   per component, inode table, extent map) + block-map pointer-page
   reads (the FFS physical index). *)

module Device = Hfad_blockdev.Device
module Fs = Hfad.Fs
module H = Hfad_hierfs.Hierfs
module Search = Hfad_hierfs.Desktop_search
open Bench_util

let filler i =
  Printf.sprintf "ordinary document number %d with unremarkable content" i

let hier_cost ~depth =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  (* pathcache off: this experiment reproduces the paper's claim about
     the uncached component walk; R1 measures the memo. *)
  let h = H.format ~config:(H.Config.v ~cache_pages:2048 ~pathcache_entries:0 ()) dev in
  let dir =
    String.concat "" (List.init depth (fun i -> Printf.sprintf "/level%d" i))
  in
  H.mkdir_p h dir;
  let needle_i = scaled 100 ~smoke:4 in
  for i = 0 to scaled 255 ~smoke:31 do
    let content = if i = needle_i then filler i ^ " xyzneedle" else filler i in
    ignore (H.create_file ~content h (Printf.sprintf "%s/doc%03d.txt" dir i))
  done;
  let ds = Search.create h in
  ignore (Search.index_tree ds "/");
  let hits, deltas =
    counters_of (fun () -> Search.search_and_read ds "xyzneedle" ~bytes_per_hit:16)
  in
  assert (List.length hits = 1);
  let descents = counter deltas "btree.descents" in
  let blockmap = counter deltas "hierfs.blockmap_reads" in
  ( descents + blockmap,
    descents,
    counter deltas "hierfs.components_walked",
    counter deltas "hierfs.inode_fetches",
    counter deltas "btree.nodes_visited" )

let hfad_cost ~depth =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let fs = Fs.format ~config:(Fs.Config.v ~cache_pages:2048 ~index_mode:Fs.Eager ()) dev in
  (* Same corpus; hFAD does not care about depth, but we keep the POSIX
     names anyway to store an equivalent namespace. *)
  let posix = Hfad_posix.Posix_fs.mount fs in
  let dir =
    String.concat "" (List.init depth (fun i -> Printf.sprintf "/level%d" i))
  in
  Hfad_posix.Posix_fs.mkdir_p_exn posix dir;
  let needle_oid = ref None in
  let needle_i = scaled 100 ~smoke:4 in
  for i = 0 to scaled 255 ~smoke:31 do
    let content = if i = needle_i then filler i ^ " xyzneedle" else filler i in
    let oid =
      Hfad_posix.Posix_fs.create_file_exn ~content posix
        (Printf.sprintf "%s/doc%03d.txt" dir i)
    in
    if i = needle_i then needle_oid := Some oid
  done;
  let hits, deltas =
    counters_of (fun () ->
        match Fs.search fs "xyzneedle" with
        | (oid, _) :: _ -> Fs.read fs oid ~off:0 ~len:16
        | [] -> assert false)
  in
  ignore hits;
  ( counter deltas "btree.descents",
    counter deltas "btree.descents",
    0,
    0,
    counter deltas "btree.nodes_visited" )

let run () =
  heading "C1: index traversals, search term -> data bytes (one hit)";
  say "hierarchical stack = desktop-search index -> pathname -> namespace";
  say "walk -> inode -> FFS block map; hFAD = full-text index -> object map.";
  say "";
  let rows =
    List.concat_map
      (fun depth ->
        let h_total, h_desc, h_comp, h_ino, h_nodes = hier_cost ~depth in
        let f_total, _, _, _, f_nodes = hfad_cost ~depth in
        [
          [
            fmt_int depth;
            "hierarchical";
            fmt_int h_total;
            fmt_int h_desc;
            fmt_int h_comp;
            fmt_int h_ino;
            fmt_int h_nodes;
          ];
          [
            "";
            "hFAD";
            fmt_int f_total;
            fmt_int f_total;
            "0";
            "0";
            fmt_int f_nodes;
          ];
        ])
      [ 2; 4; 6; 8 ]
  in
  table
    ([
       [
         "depth"; "system"; "traversals"; "descents"; "components";
         "inode fetches"; "nodes visited";
       ];
     ]
    @ rows);
  say "";
  say "expected shape: hierarchical total grows with depth and is >= 4 even";
  say "when shallow; hFAD is constant in namespace depth."
