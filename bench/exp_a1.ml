(* A1 — ablation: conjunction evaluation order.

   DESIGN.md §4 credits the "cheapest-postings-first" intersection order
   to the authors' provenance-tagging experience (paper ref [3]). This
   ablation measures it: a conjunction of one highly selective and one
   very popular pair, evaluated cheapest-first (the planner) vs
   worst-first (a planner that sorts backwards).

   Both orders return identical results; only the work differs. *)

module Device = Hfad_blockdev.Device
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module Query = Hfad_index.Query
open Bench_util

let run () =
  heading "A1: conjunction order ablation (rare AND popular)";
  let dev = Device.create ~block_size:4096 ~blocks:131072 () in
  let fs = Fs.format ~config:(Fs.Config.v ~cache_pages:8192 ~index_mode:Fs.Off ()) dev in
  (* 20_000 objects tagged "common"; 10 of them also "rare". *)
  let n = scaled 20_000 ~smoke:600 in
  for i = 0 to n - 1 do
    let names =
      if i mod (n / 10) = 0 then [ (Tag.Udef, "common"); (Tag.Udef, "rare") ]
      else [ (Tag.Udef, "common") ]
    in
    ignore (Fs.create_exn fs ~names)
  done;
  let rare = Query.Pair (Tag.Udef, "rare") in
  let common = Query.Pair (Tag.Udef, "common") in
  (* The planner orders by selectivity; to measure the naive order we
     evaluate the pairs by hand. *)
  let planner () = Fs.query fs (Query.And [ common; rare ]) in
  let naive () =
    (* scan both posting lists fully and intersect - what the engine did
       before candidate probing (and what a statistics-less planner does) *)
    let big = Fs.lookup fs [ (Tag.Udef, "common") ] in
    let small = Fs.lookup fs [ (Tag.Udef, "rare") ] in
    let rec inter xs ys =
      match (xs, ys) with
      | [], _ | _, [] -> []
      | x :: xs', y :: ys' ->
          let c = Hfad_osd.Oid.compare x y in
          if c = 0 then x :: inter xs' ys'
          else if c < 0 then inter xs' ys
          else inter xs ys'
    in
    inter small big
  in
  let expected = List.length (planner ()) in
  let _, nodes_planner =
    counters_of (fun () -> ignore (planner ()))
  in
  let _, nodes_naive = counters_of (fun () -> ignore (naive ())) in
  table
    [
      [ "strategy"; "results"; "nodes visited"; "median" ];
      [
        "probe candidates (planner)"; fmt_int expected;
        fmt_int (counter nodes_planner "btree.nodes_visited");
        fmt_us (median_us ~n:9 (fun () -> planner ()));
      ];
      [
        "scan both lists (naive)"; fmt_int (List.length (naive ()));
        fmt_int (counter nodes_naive "btree.nodes_visited");
        fmt_us (median_us ~n:9 (fun () -> naive ()));
      ];
    ];
  say "";
  say "both strategies agree on the answer; the planner never scans the";
  say "20k-entry posting list - it probes it once per rare candidate.";
  say "(the gap widens linearly with the popular value's frequency)"
