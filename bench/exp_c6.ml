(* C6 — §3.4's lazy background indexing: "we use background threads to
   perform lazy full-text indexing."

   The trade: lazy ingest returns quickly (index work deferred), at the
   price of a staleness window during which new content is reachable by
   ID or tag but not yet by search. We ingest a burst of documents under
   both policies, then drain the lazy backlog in batches, reporting the
   searchable fraction after each batch. *)

module Device = Hfad_blockdev.Device
module Rng = Hfad_util.Rng
module Fs = Hfad.Fs
module Corpus = Hfad_workload.Corpus
module Load = Hfad_workload.Load
module P = Hfad_posix.Posix_fs
module Lazy_indexer = Hfad_fulltext.Lazy_indexer
module Index_store = Hfad_index.Index_store
open Bench_util

let burst () = scaled 2000 ~smoke:120
let drain_batch () = scaled 250 ~smoke:40

let ingest mode =
  let dev = Device.create ~block_size:4096 ~blocks:262144 () in
  let fs = Fs.format ~config:(Fs.Config.v ~cache_pages:8192 ~index_mode:mode ()) dev in
  let posix = P.mount fs in
  let emails = Corpus.emails (Rng.create 5L) ~count:(burst ()) in
  let _, ms = time_ms (fun () -> ignore (Load.emails_into_hfad posix emails)) in
  (fs, ms)

let run () =
  heading
    (Printf.sprintf "C6: lazy vs eager content indexing (burst of %d documents)"
       (burst ()));
  let fs_eager, eager_ms = ingest Fs.Eager in
  let fs_lazy, lazy_ms = ingest Fs.Lazy in
  table
    [
      [ "policy"; "ingest wall time"; "backlog after ingest" ];
      [ "eager"; fmt_f1 eager_ms ^ " ms"; "0" ];
      [
        "lazy (paper 3.4)"; fmt_f1 lazy_ms ^ " ms";
        fmt_int (Fs.index_backlog fs_lazy);
      ];
    ];
  ignore fs_eager;
  say "";
  say "draining the lazy backlog in batches of %d:" (drain_batch ());
  let expected =
    List.length (List.map fst (Fs.search fs_eager "budget"))
  in
  let indexer = Index_store.indexer (Fs.index fs_lazy) in
  let rows = ref [] in
  let batch = ref 0 in
  let record () =
    let visible = List.length (Fs.search fs_lazy "budget") in
    rows :=
      [
        fmt_int !batch;
        fmt_int (Fs.index_backlog fs_lazy);
        fmt_int visible;
        Printf.sprintf "%.0f%%"
          (100. *. float_of_int visible /. float_of_int (max 1 expected));
      ]
      :: !rows
  in
  record ();
  while Fs.index_backlog fs_lazy > 0 do
    incr batch;
    ignore (Lazy_indexer.drain ~max_items:(drain_batch ()) indexer);
    record ()
  done;
  table
    ([ [ "batches drained"; "backlog"; "'budget' hits"; "visibility" ] ]
    @ List.rev !rows);
  say "";
  say "expected shape: lazy ingest returns faster; search visibility climbs";
  say "to 100%% only as the background indexer catches up."
