test/test_integration.ml: Alcotest Char Filename Fun Hfad Hfad_blockdev Hfad_index Hfad_osd Hfad_posix List String Sys
