test/test_metrics.ml: Alcotest Counter Domain Format Hfad_metrics List Registry
