test/test_core.ml: Alcotest Hfad Hfad_blockdev Hfad_index Hfad_osd List Printf
