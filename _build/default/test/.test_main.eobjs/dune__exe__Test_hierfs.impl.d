test/test_hierfs.ml: Alcotest Array Atomic Bytes Char Domain Hfad_alloc Hfad_blockdev Hfad_hierfs Hfad_metrics Hfad_pager List Option QCheck QCheck_alcotest String Unix
