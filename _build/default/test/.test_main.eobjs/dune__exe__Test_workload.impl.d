test/test_workload.ml: Alcotest Hashtbl Hfad Hfad_blockdev Hfad_hierfs Hfad_index Hfad_osd Hfad_posix Hfad_util Hfad_workload List Option String
