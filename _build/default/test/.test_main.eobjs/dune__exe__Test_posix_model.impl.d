test/test_posix_model.ml: Hashtbl Hfad Hfad_blockdev Hfad_posix Hfad_util List Printf QCheck QCheck_alcotest String
