test/test_osd.ml: Alcotest Array Bytes Char Hfad_alloc Hfad_blockdev Hfad_btree Hfad_osd Int64 List Option Printf QCheck QCheck_alcotest String
