test/test_btree.ml: Alcotest Array Bytes Fun Gen Hfad_alloc Hfad_blockdev Hfad_btree Hfad_pager Hfad_util List Map Printf QCheck QCheck_alcotest String
