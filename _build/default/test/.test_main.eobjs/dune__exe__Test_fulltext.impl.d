test/test_fulltext.ml: Alcotest Hfad_alloc Hfad_blockdev Hfad_btree Hfad_fulltext Hfad_osd Hfad_pager Int64 List Printf QCheck QCheck_alcotest String
