test/test_buddy.ml: Alcotest Hfad_alloc List QCheck QCheck_alcotest
