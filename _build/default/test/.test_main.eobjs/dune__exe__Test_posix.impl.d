test/test_posix.ml: Alcotest Format Gen Hfad Hfad_blockdev Hfad_index Hfad_metrics Hfad_osd Hfad_posix List QCheck QCheck_alcotest String
