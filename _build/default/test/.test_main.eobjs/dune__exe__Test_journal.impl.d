test/test_journal.ml: Alcotest Bytes Filename Hfad Hfad_blockdev Hfad_index Hfad_journal Hfad_osd Hfad_pager Hfad_posix List Option String Sys
