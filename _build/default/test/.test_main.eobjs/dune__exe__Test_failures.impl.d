test/test_failures.ml: Alcotest Bytes Filename Fun Hfad Hfad_alloc Hfad_blockdev Hfad_btree Hfad_index Hfad_osd Hfad_pager Hfad_posix Hfad_util String Sys Unix
