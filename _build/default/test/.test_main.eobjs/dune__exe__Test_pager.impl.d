test/test_pager.ml: Alcotest Bytes Hfad_blockdev Hfad_pager
