test/test_query.ml: Alcotest Array Hfad Hfad_blockdev Hfad_index Hfad_osd Hfad_util List Printf QCheck QCheck_alcotest String
