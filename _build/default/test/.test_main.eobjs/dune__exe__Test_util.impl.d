test/test_util.ml: Alcotest Array Bytes Char Codec Crc32 Fun Gen Hfad_util Int64 List QCheck QCheck_alcotest Rng String Strx Zipf
