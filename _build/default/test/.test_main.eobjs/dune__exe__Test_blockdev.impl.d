test/test_blockdev.ml: Alcotest Bytes Char Device Domain Hfad_blockdev Latency List
