test/test_index.ml: Alcotest Bytes Char Format Gen Hfad_alloc Hfad_blockdev Hfad_btree Hfad_fulltext Hfad_index Hfad_osd Hfad_pager Hfad_util Int64 List QCheck QCheck_alcotest String
