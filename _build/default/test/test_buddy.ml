(* Tests for Hfad_alloc.Buddy: unit tests plus model-based properties. *)

module Buddy = Hfad_alloc.Buddy

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_alloc_size_rounding () =
  let b = Buddy.create ~first_block:0 ~blocks:64 () in
  check Alcotest.int "1" 1 (Buddy.alloc_size b 1);
  check Alcotest.int "2" 2 (Buddy.alloc_size b 2);
  check Alcotest.int "3" 4 (Buddy.alloc_size b 3);
  check Alcotest.int "5" 8 (Buddy.alloc_size b 5);
  check Alcotest.int "64" 64 (Buddy.alloc_size b 64)

let test_min_order () =
  let b = Buddy.create ~min_order:2 ~first_block:0 ~blocks:64 () in
  check Alcotest.int "small request rounded to 4" 4 (Buddy.alloc_size b 1)

let test_basic_alloc_free () =
  let b = Buddy.create ~first_block:0 ~blocks:16 () in
  let a = Buddy.alloc b 4 in
  check Alcotest.bool "allocated" true (Buddy.is_allocated b a);
  check Alcotest.int "size" 4 (Buddy.size_of b a);
  Buddy.free b a;
  check Alcotest.bool "freed" false (Buddy.is_allocated b a);
  Buddy.check_invariants b

let test_full_then_out_of_space () =
  let b = Buddy.create ~first_block:0 ~blocks:8 () in
  let _a1 = Buddy.alloc b 4 in
  let _a2 = Buddy.alloc b 4 in
  Alcotest.check_raises "exhausted" (Buddy.Out_of_space { requested_blocks = 1 })
    (fun () -> ignore (Buddy.alloc b 1))

let test_request_larger_than_arena () =
  let b = Buddy.create ~first_block:0 ~blocks:8 () in
  Alcotest.check_raises "too big" (Buddy.Out_of_space { requested_blocks = 16 })
    (fun () -> ignore (Buddy.alloc b 16))

let test_double_free_detected () =
  let b = Buddy.create ~first_block:0 ~blocks:8 () in
  let a = Buddy.alloc b 2 in
  Buddy.free b a;
  Alcotest.check_raises "double free" (Buddy.Invalid_free { start = a }) (fun () ->
      Buddy.free b a)

let test_free_unknown_detected () =
  let b = Buddy.create ~first_block:0 ~blocks:8 () in
  Alcotest.check_raises "unknown" (Buddy.Invalid_free { start = 3 }) (fun () ->
      Buddy.free b 3)

let test_coalescing_restores_full_run () =
  let b = Buddy.create ~first_block:0 ~blocks:32 () in
  let allocations = List.init 8 (fun _ -> Buddy.alloc b 4) in
  check Alcotest.int "all consumed" 0 (Buddy.stats b).Buddy.free_blocks;
  List.iter (Buddy.free b) allocations;
  let s = Buddy.stats b in
  check Alcotest.int "all free" 32 s.Buddy.free_blocks;
  check Alcotest.int "coalesced back to one run" 32 s.Buddy.largest_free_run;
  Buddy.check_invariants b

let test_non_power_of_two_region () =
  (* 100 blocks = arenas of 64 + 32 + 4. *)
  let b = Buddy.create ~first_block:10 ~blocks:100 () in
  let s = Buddy.stats b in
  check Alcotest.int "managed" 100 s.Buddy.total_blocks;
  check Alcotest.int "largest arena" 64 s.Buddy.largest_free_run;
  (* Allocate everything in chunks of 4: 25 allocations must all succeed. *)
  let allocs = List.init 25 (fun _ -> Buddy.alloc b 4) in
  check Alcotest.int "exhausted" 0 (Buddy.stats b).Buddy.free_blocks;
  (* Starts must lie within the managed region. *)
  List.iter
    (fun a -> check Alcotest.bool "in region" true (a >= 10 && a + 4 <= 110))
    allocs;
  List.iter (Buddy.free b) allocs;
  check Alcotest.int "restored" 100 (Buddy.stats b).Buddy.free_blocks;
  Buddy.check_invariants b

let test_first_block_offset () =
  let b = Buddy.create ~first_block:1000 ~blocks:16 () in
  let a = Buddy.alloc b 16 in
  check Alcotest.int "allocates at base" 1000 a

let test_fragmentation_metric () =
  let b = Buddy.create ~first_block:0 ~blocks:16 () in
  check (Alcotest.float 1e-9) "initially 0" 0. (Buddy.fragmentation b);
  (* Allocate alternating order-0 blocks to fragment the space. *)
  let allocs = List.init 16 (fun _ -> Buddy.alloc b 1) in
  List.iteri (fun i a -> if i mod 2 = 0 then Buddy.free b a) allocs;
  check Alcotest.bool "fragmented" true (Buddy.fragmentation b > 0.5);
  Buddy.check_invariants b

let test_splits_and_coalesces_counted () =
  let b = Buddy.create ~first_block:0 ~blocks:16 () in
  let a = Buddy.alloc b 1 in
  check Alcotest.bool "splits recorded" true ((Buddy.stats b).Buddy.splits >= 4);
  Buddy.free b a;
  check Alcotest.bool "coalesces recorded" true
    ((Buddy.stats b).Buddy.coalesces >= 4)

let test_reserve_specific_run () =
  let b = Buddy.create ~first_block:0 ~blocks:64 () in
  Buddy.reserve b ~start:8 ~blocks:8;
  check Alcotest.bool "reserved" true (Buddy.is_allocated b 8);
  check Alcotest.int "free accounting" 56 (Buddy.stats b).Buddy.free_blocks;
  Buddy.check_invariants b;
  (* Subsequent allocations avoid the reserved run. *)
  let taken = List.init 7 (fun _ -> Buddy.alloc b 8) in
  List.iter (fun a -> check Alcotest.bool "disjoint" true (a <> 8)) taken;
  (* Freeing the reservation coalesces back. *)
  List.iter (Buddy.free b) taken;
  Buddy.free b 8;
  check Alcotest.int "restored" 64 (Buddy.stats b).Buddy.largest_free_run

let test_reserve_rejects_conflict () =
  let b = Buddy.create ~first_block:0 ~blocks:16 () in
  Buddy.reserve b ~start:0 ~blocks:4;
  (try
     Buddy.reserve b ~start:0 ~blocks:4;
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (try
     Buddy.reserve b ~start:2 ~blocks:4;
     Alcotest.fail "expected misalignment rejection"
   with Invalid_argument _ -> ());
  (try
     Buddy.reserve b ~start:0 ~blocks:3;
     Alcotest.fail "expected power-of-two rejection"
   with Invalid_argument _ -> ());
  Buddy.check_invariants b

let test_reserve_then_rebuild_layout () =
  (* Simulates reopening a device: reserve the exact runs a previous
     instance allocated, in arbitrary order. *)
  let b1 = Buddy.create ~first_block:0 ~blocks:128 () in
  let runs = List.init 10 (fun i -> Buddy.alloc b1 (1 + (i mod 5))) in
  let sized = List.map (fun s -> (s, Buddy.size_of b1 s)) runs in
  let b2 = Buddy.create ~first_block:0 ~blocks:128 () in
  List.iter (fun (s, n) -> Buddy.reserve b2 ~start:s ~blocks:n) (List.rev sized);
  check Alcotest.int "same free space" (Buddy.stats b1).Buddy.free_blocks
    (Buddy.stats b2).Buddy.free_blocks;
  Buddy.check_invariants b2

(* Model-based property: run a random alloc/free trace; live allocations
   must never overlap, must stay in the managed region, and invariants
   must hold throughout; freeing everything restores the full region. *)
let prop_random_trace =
  let gen = QCheck.(list (pair (int_bound 9) (int_bound 30))) in
  QCheck.Test.make ~name:"buddy random alloc/free trace" ~count:200 gen
    (fun ops ->
      let b = Buddy.create ~first_block:5 ~blocks:75 () in
      let live = ref [] in
      let overlap (s1, l1) (s2, l2) = s1 < s2 + l2 && s2 < s1 + l1 in
      List.iter
        (fun (op, arg) ->
          if op < 7 then (
            (* alloc of size 1..31 *)
            match Buddy.alloc b (arg + 1) with
            | start ->
                let len = Buddy.size_of b start in
                if start < 5 || start + len > 80 then
                  QCheck.Test.fail_report "allocation outside region";
                List.iter
                  (fun existing ->
                    if overlap (start, len) existing then
                      QCheck.Test.fail_report "overlapping allocation")
                  !live;
                live := (start, len) :: !live
            | exception Buddy.Out_of_space _ -> ())
          else if !live <> [] then begin
            let idx = arg mod List.length !live in
            let start, _ = List.nth !live idx in
            Buddy.free b start;
            live := List.filteri (fun i _ -> i <> idx) !live
          end)
        ops;
      Buddy.check_invariants b;
      List.iter (fun (s, _) -> Buddy.free b s) !live;
      Buddy.check_invariants b;
      (Buddy.stats b).Buddy.free_blocks = 75
      && (Buddy.stats b).Buddy.largest_free_run = 64)

let prop_alloc_aligned =
  QCheck.Test.make ~name:"buddy allocations are size-aligned" ~count:200
    QCheck.(int_range 1 64)
    (fun n ->
      let b = Buddy.create ~first_block:0 ~blocks:64 () in
      match Buddy.alloc b n with
      | start ->
          let size = Buddy.size_of b start in
          start mod size = 0
      | exception Buddy.Out_of_space _ -> n > 64)

let suite =
  [
    Alcotest.test_case "alloc_size rounding" `Quick test_alloc_size_rounding;
    Alcotest.test_case "min_order granularity" `Quick test_min_order;
    Alcotest.test_case "basic alloc/free" `Quick test_basic_alloc_free;
    Alcotest.test_case "out of space" `Quick test_full_then_out_of_space;
    Alcotest.test_case "request larger than arena" `Quick test_request_larger_than_arena;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    Alcotest.test_case "free unknown detected" `Quick test_free_unknown_detected;
    Alcotest.test_case "coalescing" `Quick test_coalescing_restores_full_run;
    Alcotest.test_case "non-power-of-two region" `Quick test_non_power_of_two_region;
    Alcotest.test_case "first_block offset" `Quick test_first_block_offset;
    Alcotest.test_case "fragmentation metric" `Quick test_fragmentation_metric;
    Alcotest.test_case "split/coalesce counters" `Quick test_splits_and_coalesces_counted;
    Alcotest.test_case "reserve specific run" `Quick test_reserve_specific_run;
    Alcotest.test_case "reserve rejects conflicts" `Quick test_reserve_rejects_conflict;
    Alcotest.test_case "reserve rebuilds layout" `Quick test_reserve_then_rebuild_layout;
    qtest prop_random_trace;
    qtest prop_alloc_aligned;
  ]
