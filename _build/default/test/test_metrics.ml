(* Tests for Hfad_metrics: Counter and Registry. *)

open Hfad_metrics

let check = Alcotest.check

let test_counter_basics () =
  let c = Counter.make "x" in
  check Alcotest.string "name" "x" (Counter.name c);
  check Alcotest.int "initial" 0 (Counter.get c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 5;
  check Alcotest.int "after ops" 7 (Counter.get c);
  Counter.reset c;
  check Alcotest.int "after reset" 0 (Counter.get c)

let test_counter_pp () =
  let c = Counter.make "hits" in
  Counter.add c 3;
  check Alcotest.string "pp" "hits=3" (Format.asprintf "%a" Counter.pp c)

let test_counter_parallel () =
  let c = Counter.make "p" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "no lost updates" 40_000 (Counter.get c)

let test_registry_same_counter () =
  let r = Registry.create () in
  let a = Registry.counter r "foo" in
  let b = Registry.counter r "foo" in
  Counter.incr a;
  check Alcotest.int "aliased" 1 (Counter.get b)

let test_registry_counters_sorted () =
  let r = Registry.create () in
  Counter.add (Registry.counter r "b") 2;
  Counter.add (Registry.counter r "a") 1;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted" [ ("a", 1); ("b", 2) ] (Registry.counters r)

let test_registry_snapshot_diff () =
  let r = Registry.create () in
  let a = Registry.counter r "a" in
  Counter.add a 10;
  let snap = Registry.snapshot r in
  Counter.add a 5;
  Counter.add (Registry.counter r "new") 3;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "delta" [ ("a", 5); ("new", 3) ] (Registry.diff r snap);
  (* zero deltas omitted *)
  let snap2 = Registry.snapshot r in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "empty delta" [] (Registry.diff r snap2)

let test_registry_reset_all () =
  let r = Registry.create () in
  Counter.add (Registry.counter r "a") 4;
  Counter.add (Registry.counter r "b") 2;
  Registry.reset_all r;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "all zero" [ ("a", 0); ("b", 0) ] (Registry.counters r)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter pp" `Quick test_counter_pp;
    Alcotest.test_case "counter parallel increments" `Slow test_counter_parallel;
    Alcotest.test_case "registry aliases by name" `Quick test_registry_same_counter;
    Alcotest.test_case "registry sorted listing" `Quick test_registry_counters_sorted;
    Alcotest.test_case "registry snapshot diff" `Quick test_registry_snapshot_diff;
    Alcotest.test_case "registry reset_all" `Quick test_registry_reset_all;
  ]
