(* Tests for Hfad_btree: unit tests plus model-based properties against
   the stdlib Map, with structural verification after mutation bursts. *)

module Device = Hfad_blockdev.Device
module Pager = Hfad_pager.Pager
module Buddy = Hfad_alloc.Buddy
module Btree = Hfad_btree.Btree
module Node = Hfad_btree.Node
module SMap = Map.Make (String)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* A tree over a small page size so splits and merges happen early. *)
let mk_tree ?(page_size = 256) ?(blocks = 4096) () =
  let dev = Device.create ~block_size:page_size ~blocks () in
  let pager = Pager.create ~cache_pages:64 dev in
  let buddy = Buddy.create ~first_block:0 ~blocks () in
  let alloc =
    {
      Btree.alloc_page = (fun () -> Buddy.alloc buddy 1);
      Btree.free_page = (fun p -> Buddy.free buddy p);
    }
  in
  let root = Buddy.alloc buddy 1 in
  (Btree.create pager alloc ~root, buddy)

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%d" i

(* --- node serialization ----------------------------------------------- *)

let test_node_leaf_roundtrip () =
  let page = Bytes.create 256 in
  let node =
    Node.Leaf { entries = [| ("a", "1"); ("b", "2"); ("c", "3") |]; next = Some 42 }
  in
  Node.encode node page;
  match Node.decode page with
  | Node.Leaf { entries; next } ->
      check (Alcotest.option Alcotest.int) "next" (Some 42) next;
      check Alcotest.int "entries" 3 (Array.length entries);
      check (Alcotest.pair Alcotest.string Alcotest.string) "entry" ("b", "2")
        entries.(1)
  | Node.Internal _ -> Alcotest.fail "decoded wrong node kind"

let test_node_leaf_no_next () =
  let page = Bytes.create 256 in
  Node.encode (Node.Leaf { entries = [||]; next = None }) page;
  match Node.decode page with
  | Node.Leaf { entries; next } ->
      check (Alcotest.option Alcotest.int) "next" None next;
      check Alcotest.int "empty" 0 (Array.length entries)
  | Node.Internal _ -> Alcotest.fail "decoded wrong node kind"

let test_node_internal_roundtrip () =
  let page = Bytes.create 256 in
  let node = Node.Internal { keys = [| "m"; "t" |]; children = [| 1; 2; 3 |] } in
  Node.encode node page;
  match Node.decode page with
  | Node.Internal { keys; children } ->
      check (Alcotest.array Alcotest.string) "keys" [| "m"; "t" |] keys;
      check (Alcotest.array Alcotest.int) "children" [| 1; 2; 3 |] children
  | Node.Leaf _ -> Alcotest.fail "decoded wrong node kind"

let test_node_encode_too_big () =
  let page = Bytes.create 32 in
  let node = Node.Leaf { entries = [| (String.make 40 'k', "v") |]; next = None } in
  (try
     Node.encode node page;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_node_find_child () =
  let keys = [| "f"; "m"; "t" |] in
  check Alcotest.int "below all" 0 (Node.find_child keys "a");
  check Alcotest.int "equal routes right" 1 (Node.find_child keys "f");
  check Alcotest.int "between" 1 (Node.find_child keys "g");
  check Alcotest.int "above all" 3 (Node.find_child keys "z")

let test_node_binary_roundtrip =
  qtest
    (QCheck.Test.make ~name:"leaf entries with binary keys/values roundtrip"
       ~count:300
       QCheck.(small_list (pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 20))))
       (fun pairs ->
         let entries =
           Array.of_list
             (SMap.bindings (SMap.of_seq (List.to_seq pairs)))
         in
         let page = Bytes.create 4096 in
         let node = Node.Leaf { entries; next = None } in
         QCheck.assume (Node.encoded_size node <= 4096);
         Node.encode node page;
         match Node.decode page with
         | Node.Leaf { entries = entries'; _ } -> entries = entries'
         | Node.Internal _ -> false))

(* --- basic operations -------------------------------------------------- *)

let test_empty_tree () =
  let t, _ = mk_tree () in
  check (Alcotest.option Alcotest.string) "find" None (Btree.find t "x");
  check Alcotest.bool "is_empty" true (Btree.is_empty t);
  check Alcotest.int "cardinal" 0 (Btree.cardinal t);
  check Alcotest.int "height" 1 (Btree.height t);
  Btree.verify t

let test_single_binding () =
  let t, _ = mk_tree () in
  Btree.put t ~key:"hello" ~value:"world";
  check (Alcotest.option Alcotest.string) "found" (Some "world")
    (Btree.find t "hello");
  check (Alcotest.option Alcotest.string) "absent" None (Btree.find t "hell");
  check Alcotest.int "cardinal" 1 (Btree.cardinal t);
  Btree.verify t

let test_replace_value () =
  let t, _ = mk_tree () in
  Btree.put t ~key:"k" ~value:"v1";
  Btree.put t ~key:"k" ~value:"v2";
  check (Alcotest.option Alcotest.string) "replaced" (Some "v2") (Btree.find t "k");
  check Alcotest.int "no duplicate" 1 (Btree.cardinal t)

let test_empty_key_is_valid () =
  (* The paper stores object metadata under the NULL key; our equivalent
     is the empty string, which must behave like any other key. *)
  let t, _ = mk_tree () in
  Btree.put t ~key:"" ~value:"metadata";
  Btree.put t ~key:"a" ~value:"1";
  check (Alcotest.option Alcotest.string) "null key" (Some "metadata")
    (Btree.find t "");
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "sorts first"
    (Some ("", "metadata"))
    (Btree.min_binding t)

let test_many_inserts_and_height () =
  let t, _ = mk_tree () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  for i = 0 to n - 1 do
    check (Alcotest.option Alcotest.string) "present" (Some (value i))
      (Btree.find t (key i))
  done;
  check Alcotest.int "cardinal" n (Btree.cardinal t);
  check Alcotest.bool "height grew" true (Btree.height t > 1);
  check Alcotest.bool "height logarithmic" true (Btree.height t <= 8);
  Btree.verify t

let test_random_insertion_order () =
  let t, _ = mk_tree () in
  let rng = Hfad_util.Rng.create 77L in
  let order = Array.init 1000 Fun.id in
  Hfad_util.Rng.shuffle rng order;
  Array.iter (fun i -> Btree.put t ~key:(key i) ~value:(value i)) order;
  check
    (Alcotest.list Alcotest.string)
    "sorted iteration"
    (List.init 1000 key)
    (List.map fst (Btree.to_list t));
  Btree.verify t

let test_remove_simple () =
  let t, _ = mk_tree () in
  Btree.put t ~key:"a" ~value:"1";
  Btree.put t ~key:"b" ~value:"2";
  check Alcotest.bool "removed" true (Btree.remove t "a");
  check Alcotest.bool "already gone" false (Btree.remove t "a");
  check (Alcotest.option Alcotest.string) "gone" None (Btree.find t "a");
  check (Alcotest.option Alcotest.string) "kept" (Some "2") (Btree.find t "b")

let test_remove_all_collapses () =
  let t, buddy = mk_tree () in
  let n = 1500 in
  for i = 0 to n - 1 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  let live_at_peak = (Buddy.stats buddy).Buddy.live_allocations in
  check Alcotest.bool "tree consumed pages" true (live_at_peak > 10);
  for i = 0 to n - 1 do
    check Alcotest.bool "removed" true (Btree.remove t (key i))
  done;
  check Alcotest.bool "empty" true (Btree.is_empty t);
  check Alcotest.int "height back to 1" 1 (Btree.height t);
  (* All pages except the root must have been returned to the allocator. *)
  check Alcotest.int "pages reclaimed" 1 (Buddy.stats buddy).Buddy.live_allocations;
  Btree.verify t

let test_interleaved_insert_remove () =
  let t, _ = mk_tree () in
  let model = ref SMap.empty in
  let rng = Hfad_util.Rng.create 99L in
  for step = 0 to 5000 do
    let k = key (Hfad_util.Rng.int rng 300) in
    if Hfad_util.Rng.bool rng then begin
      let v = value step in
      Btree.put t ~key:k ~value:v;
      model := SMap.add k v !model
    end
    else begin
      let expected = SMap.mem k !model in
      check Alcotest.bool "remove agrees with model" expected (Btree.remove t k);
      model := SMap.remove k !model
    end
  done;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "final state matches model" (SMap.bindings !model) (Btree.to_list t);
  Btree.verify t

(* --- ordered access ---------------------------------------------------- *)

let test_fold_range () =
  let t, _ = mk_tree () in
  for i = 0 to 99 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  let slice =
    Btree.fold_range t ~lo:(key 10) ~hi:(key 20) ~init:[] (fun acc k _ -> k :: acc)
  in
  check (Alcotest.list Alcotest.string) "half-open slice"
    (List.init 10 (fun i -> key (10 + i)))
    (List.rev slice)

let test_fold_range_unbounded () =
  let t, _ = mk_tree () in
  for i = 0 to 49 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  let all = Btree.fold_range t ~init:0 (fun acc _ _ -> acc + 1) in
  check Alcotest.int "all" 50 all;
  let upper = Btree.fold_range t ~hi:(key 25) ~init:0 (fun acc _ _ -> acc + 1) in
  check Alcotest.int "hi only" 25 upper;
  let lower = Btree.fold_range t ~lo:(key 25) ~init:0 (fun acc _ _ -> acc + 1) in
  check Alcotest.int "lo only" 25 lower

let test_seek_and_next () =
  let t, _ = mk_tree () in
  List.iter
    (fun k -> Btree.put t ~key:k ~value:(String.uppercase_ascii k))
    [ "b"; "d"; "f" ];
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "seek exact" (Some ("d", "D")) (Btree.seek t "d");
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "seek between" (Some ("d", "D")) (Btree.seek t "c");
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "seek past end" None (Btree.seek t "g");
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "next_after skips equal" (Some ("f", "F")) (Btree.next_after t "d")

let test_floor_binding () =
  let t, _ = mk_tree () in
  List.iter
    (fun k -> Btree.put t ~key:k ~value:(String.uppercase_ascii k))
    [ "b"; "d"; "f" ];
  let pair = Alcotest.(option (pair string string)) in
  check pair "exact" (Some ("d", "D")) (Btree.floor_binding t "d");
  check pair "between" (Some ("d", "D")) (Btree.floor_binding t "e");
  check pair "below all" None (Btree.floor_binding t "a");
  check pair "above all" (Some ("f", "F")) (Btree.floor_binding t "z")

let prop_floor_matches_model =
  QCheck.Test.make ~name:"floor_binding agrees with Map" ~count:100
    QCheck.(pair (list (int_bound 500)) (int_bound 500))
    (fun (keys, probe) ->
      let t, _ = mk_tree () in
      let model = ref SMap.empty in
      List.iter
        (fun i ->
          Btree.put t ~key:(key i) ~value:(value i);
          model := SMap.add (key i) (value i) !model)
        keys;
      let expected = SMap.find_last_opt (fun k -> k <= key probe) !model in
      Btree.floor_binding t (key probe) = expected)

let test_floor_crosses_leaf_boundary () =
  (* Force multiple leaves, then probe keys that fall just below the first
     key of a leaf: the answer lives in the previous leaf, exercising the
     fallback path. *)
  let t, _ = mk_tree () in
  for i = 0 to 999 do
    Btree.put t ~key:(key (2 * i)) ~value:(value i)
  done;
  for i = 1 to 999 do
    match Btree.floor_binding t (key ((2 * i) - 1)) with
    | Some (k, _) -> check Alcotest.string "predecessor" (key (2 * (i - 1))) k
    | None -> Alcotest.fail "expected a floor"
  done

let test_fold_prefix () =
  let t, _ = mk_tree () in
  List.iter
    (fun k -> Btree.put t ~key:k ~value:"")
    [ "/home/margo/a"; "/home/margo/b"; "/home/nick/c"; "/tmp/d" ];
  let under_margo =
    Btree.fold_prefix t ~prefix:"/home/margo/" ~init:[] (fun acc k _ -> k :: acc)
  in
  check (Alcotest.list Alcotest.string) "prefix match"
    [ "/home/margo/a"; "/home/margo/b" ]
    (List.rev under_margo)

let test_min_max_binding () =
  let t, _ = mk_tree () in
  for i = 0 to 200 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "min" (Some (key 0, value 0)) (Btree.min_binding t);
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "max" (Some (key 200, value 200)) (Btree.max_binding t)

(* --- limits, clear, destroy -------------------------------------------- *)

let test_key_value_limits () =
  let t, _ = mk_tree ~page_size:256 () in
  let big_key = String.make (Btree.max_key_size t + 1) 'k' in
  let big_value = String.make (Btree.max_value_size t + 1) 'v' in
  Alcotest.check_raises "key too large"
    (Btree.Key_too_large (String.length big_key)) (fun () ->
      Btree.put t ~key:big_key ~value:"v");
  Alcotest.check_raises "value too large"
    (Btree.Value_too_large (String.length big_value)) (fun () ->
      Btree.put t ~key:"k" ~value:big_value);
  (* At the boundary both are accepted. *)
  Btree.put t ~key:(String.make (Btree.max_key_size t) 'k')
    ~value:(String.make (Btree.max_value_size t) 'v');
  Btree.verify t

let test_clear () =
  let t, buddy = mk_tree () in
  for i = 0 to 999 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  Btree.clear t;
  check Alcotest.bool "empty" true (Btree.is_empty t);
  check Alcotest.int "only root live" 1 (Buddy.stats buddy).Buddy.live_allocations;
  (* The tree is reusable after clear. *)
  Btree.put t ~key:"x" ~value:"y";
  check (Alcotest.option Alcotest.string) "usable" (Some "y") (Btree.find t "x")

let test_destroy_frees_everything () =
  let t, buddy = mk_tree () in
  for i = 0 to 999 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  Btree.destroy t;
  check Alcotest.int "no live pages" 0 (Buddy.stats buddy).Buddy.live_allocations

let test_persistence_through_reopen () =
  (* A tree must be readable through a second handle on the same root,
     after a pager flush — this is the on-disk format contract. *)
  let dev = Device.create ~block_size:256 ~blocks:1024 () in
  let pager = Pager.create ~cache_pages:16 dev in
  let buddy = Buddy.create ~first_block:0 ~blocks:1024 () in
  let alloc =
    {
      Btree.alloc_page = (fun () -> Buddy.alloc buddy 1);
      Btree.free_page = (fun p -> Buddy.free buddy p);
    }
  in
  let root = Buddy.alloc buddy 1 in
  let t = Btree.create pager alloc ~root in
  for i = 0 to 500 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  Pager.flush pager;
  (* Fresh pager = cold cache; all pages come back from the device. *)
  let pager2 = Pager.create ~cache_pages:16 dev in
  let t2 = Btree.open_tree pager2 alloc ~root in
  for i = 0 to 500 do
    check (Alcotest.option Alcotest.string) "reopened" (Some (value i))
      (Btree.find t2 (key i))
  done;
  Btree.verify t2

let test_stats_counting () =
  let t, _ = mk_tree () in
  Btree.reset_stats t;
  for i = 0 to 99 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  let s = Btree.stats t in
  check Alcotest.int "descents = ops" 100 s.Btree.descents;
  check Alcotest.bool "nodes visited >= descents" true
    (s.Btree.nodes_visited >= s.Btree.descents);
  check Alcotest.bool "splits happened" true (s.Btree.splits > 0)

let test_traversal_depth_tracks_height () =
  let t, _ = mk_tree () in
  for i = 0 to 1999 do
    Btree.put t ~key:(key i) ~value:(value i)
  done;
  let h = Btree.height t in
  Btree.reset_stats t;
  ignore (Btree.find t (key 1000));
  let s = Btree.stats t in
  check Alcotest.int "one descent" 1 s.Btree.descents;
  check Alcotest.int "nodes visited = height" h s.Btree.nodes_visited

(* --- properties --------------------------------------------------------- *)

let apply_ops ops =
  let t, _ = mk_tree ~page_size:256 () in
  let model = ref SMap.empty in
  List.iter
    (fun (is_put, k, v) ->
      (* Clamp keys to the tree's limits. *)
      let k = if String.length k > 20 then String.sub k 0 20 else k in
      let v = if String.length v > 40 then String.sub v 0 40 else v in
      if is_put then begin
        Btree.put t ~key:k ~value:v;
        model := SMap.add k v !model
      end
      else begin
        ignore (Btree.remove t k);
        model := SMap.remove k !model
      end)
    ops;
  (t, !model)

let ops_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 400)
      (triple bool (string_of_size Gen.(0 -- 24)) (string_of_size Gen.(0 -- 48))))

let prop_model_equivalence =
  QCheck.Test.make ~name:"btree behaves like Map under random traces" ~count:100
    ops_gen
    (fun ops ->
      let t, model = apply_ops ops in
      Btree.to_list t = SMap.bindings model)

let prop_structural_invariants =
  QCheck.Test.make ~name:"btree invariants hold under random traces" ~count:100
    ops_gen
    (fun ops ->
      let t, _ = apply_ops ops in
      Btree.verify t;
      true)

let prop_range_matches_model =
  QCheck.Test.make ~name:"fold_range agrees with Map filtering" ~count:100
    QCheck.(pair ops_gen (pair (string_of_size Gen.(0 -- 6)) (string_of_size Gen.(0 -- 6))))
    (fun (ops, (a, b)) ->
      let t, model = apply_ops ops in
      let lo = min a b and hi = max a b in
      let expected =
        SMap.bindings model
        |> List.filter (fun (k, _) ->
               String.compare k lo >= 0 && String.compare k hi < 0)
      in
      let actual =
        List.rev (Btree.fold_range t ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))
      in
      actual = expected)

(* Same model property under the smallest legal page: splits and merges
   fire constantly, exercising rebalance paths hard. *)
let prop_tiny_pages =
  QCheck.Test.make ~name:"btree model equivalence on tiny pages" ~count:40
    ops_gen
    (fun ops ->
      let t, _ = mk_tree ~page_size:256 () in
      let model = ref SMap.empty in
      List.iter
        (fun (is_put, k, v) ->
          let k = if String.length k > 16 then String.sub k 0 16 else k in
          let v = if String.length v > 32 then String.sub v 0 32 else v in
          if is_put then begin
            Btree.put t ~key:k ~value:v;
            model := SMap.add k v !model
          end
          else begin
            ignore (Btree.remove t k);
            model := SMap.remove k !model
          end)
        ops;
      Btree.verify t;
      Btree.to_list t = SMap.bindings !model)

let suite =
  [
    Alcotest.test_case "node leaf roundtrip" `Quick test_node_leaf_roundtrip;
    Alcotest.test_case "node leaf without next" `Quick test_node_leaf_no_next;
    Alcotest.test_case "node internal roundtrip" `Quick test_node_internal_roundtrip;
    Alcotest.test_case "node rejects oversized encode" `Quick test_node_encode_too_big;
    Alcotest.test_case "node find_child routing" `Quick test_node_find_child;
    test_node_binary_roundtrip;
    Alcotest.test_case "empty tree" `Quick test_empty_tree;
    Alcotest.test_case "single binding" `Quick test_single_binding;
    Alcotest.test_case "replace value" `Quick test_replace_value;
    Alcotest.test_case "empty (NULL) key" `Quick test_empty_key_is_valid;
    Alcotest.test_case "bulk inserts + height bound" `Quick test_many_inserts_and_height;
    Alcotest.test_case "random insertion order" `Quick test_random_insertion_order;
    Alcotest.test_case "remove simple" `Quick test_remove_simple;
    Alcotest.test_case "remove all + page reclamation" `Quick test_remove_all_collapses;
    Alcotest.test_case "interleaved insert/remove vs model" `Slow
      test_interleaved_insert_remove;
    Alcotest.test_case "fold_range half-open" `Quick test_fold_range;
    Alcotest.test_case "fold_range unbounded" `Quick test_fold_range_unbounded;
    Alcotest.test_case "seek / next_after" `Quick test_seek_and_next;
    Alcotest.test_case "floor_binding" `Quick test_floor_binding;
    qtest prop_floor_matches_model;
    Alcotest.test_case "floor across leaf boundary" `Quick
      test_floor_crosses_leaf_boundary;
    Alcotest.test_case "fold_prefix" `Quick test_fold_prefix;
    Alcotest.test_case "min/max binding" `Quick test_min_max_binding;
    Alcotest.test_case "key/value size limits" `Quick test_key_value_limits;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "destroy frees pages" `Quick test_destroy_frees_everything;
    Alcotest.test_case "persistence through reopen" `Quick
      test_persistence_through_reopen;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "traversal depth = height" `Quick
      test_traversal_depth_tracks_height;
    qtest prop_model_equivalence;
    qtest prop_structural_invariants;
    qtest prop_range_matches_model;
    qtest prop_tiny_pages;
  ]
