(* Tests for the write-ahead journal: unit behaviour of Journal itself,
   then crash-consistency of journaled OSD checkpoints — a "crash" is
   simulated by snapshotting the device image at a chosen instant and
   reopening from the snapshot. *)

module Device = Hfad_blockdev.Device
module Pager = Hfad_pager.Pager
module Journal = Hfad_journal.Journal
module Osd = Hfad_osd.Osd
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module P = Hfad_posix.Posix_fs

let check = Alcotest.check

let mk_dev ?(block_size = 512) ?(blocks = 4096) () =
  Device.create ~block_size ~blocks ()

let page dev c = Bytes.make (Device.block_size dev) c

(* Snapshot a device through its image format: a perfect copy of the
   persistent state at this instant. *)
let snapshot dev =
  let path = Filename.temp_file "hfad_crash" ".img" in
  Device.save dev path;
  let copy = Device.load path in
  Sys.remove path;
  copy

(* --- Journal unit behaviour ------------------------------------------------ *)

let test_journal_roundtrip () =
  let dev = mk_dev () in
  let j = Journal.format dev ~first_block:2 ~blocks:64 in
  check (Alcotest.option Alcotest.reject) "clean initially" None
    (Option.map (fun _ -> assert false) (Journal.recover j));
  Journal.commit j [ (100, page dev 'a'); (200, page dev 'b') ];
  (match Journal.recover j with
  | Some [ (100, a); (200, b) ] ->
      check Alcotest.bytes "page a" (page dev 'a') a;
      check Alcotest.bytes "page b" (page dev 'b') b
  | Some _ | None -> Alcotest.fail "expected the committed batch");
  (* recovery is idempotent until mark_clean *)
  check Alcotest.bool "still recoverable" true (Journal.recover j <> None);
  Journal.mark_clean j;
  check Alcotest.bool "clean after checkpoint" true (Journal.recover j = None)

let test_journal_empty_commit () =
  let dev = mk_dev () in
  let j = Journal.format dev ~first_block:2 ~blocks:8 in
  Journal.commit j [];
  check Alcotest.bool "no-op" true (Journal.recover j = None)

let test_journal_sequence_advances () =
  let dev = mk_dev () in
  let j = Journal.format dev ~first_block:2 ~blocks:64 in
  check Alcotest.int64 "initial" 0L (Journal.sequence j);
  Journal.commit j [ (50, page dev 'x') ];
  Journal.mark_clean j;
  Journal.commit j [ (51, page dev 'y') ];
  check Alcotest.int64 "two commits" 2L (Journal.sequence j);
  (* attach restores the sequence *)
  let j2 = Journal.attach dev ~first_block:2 ~blocks:64 in
  ignore (Journal.recover j2);
  check Alcotest.int64 "survives attach" 2L (Journal.sequence j2)

let test_journal_full () =
  let dev = mk_dev () in
  let j = Journal.format dev ~first_block:2 ~blocks:4 in
  let batch = List.init 10 (fun i -> (100 + i, page dev 'z')) in
  (try
     Journal.commit j batch;
     Alcotest.fail "expected Journal_full"
   with Journal.Journal_full _ -> ());
  check Alcotest.bool "capacity sane" true (Journal.capacity_pages j < 10)

let test_journal_unsealed_discarded () =
  (* Crash after the record body but before the header seal: the attach
     sees a clean header and ignores the body. *)
  let dev = mk_dev () in
  let j = Journal.format dev ~first_block:2 ~blocks:64 in
  (* Fail the header write (journal block 2) after the body lands. *)
  let armed = ref false in
  Device.set_fault dev (fun op idx -> !armed && op = Device.Write && idx = 2);
  armed := true;
  (try
     Journal.commit j [ (300, page dev 'q') ];
     Alcotest.fail "seal should have failed"
   with Device.Io_error _ -> ());
  Device.clear_fault dev;
  let j2 = Journal.attach dev ~first_block:2 ~blocks:64 in
  check Alcotest.bool "unsealed commit discarded" true (Journal.recover j2 = None)

let test_journal_bad_magic () =
  let dev = mk_dev () in
  try
    ignore (Journal.attach dev ~first_block:2 ~blocks:8);
    Alcotest.fail "expected failure"
  with Failure _ -> ()

(* --- crash consistency of journaled checkpoints ------------------------------ *)

let populate fs posix =
  P.mkdir_p posix "/data";
  ignore (P.create_file ~content:"checkpoint one content" posix "/data/one");
  Fs.flush fs

let mutate fs posix =
  ignore (P.create_file ~content:"checkpoint two content" posix "/data/two");
  P.write_file posix "/data/one" "rewritten in second checkpoint";
  let oid = P.resolve posix "/data/two" in
  Fs.name fs oid Tag.Udef "fresh"

let verify_first_checkpoint fs2 posix2 =
  check Alcotest.string "old content intact" "checkpoint one content"
    (P.read_file posix2 "/data/one");
  check Alcotest.bool "second file absent" false (P.exists posix2 "/data/two");
  Fs.verify fs2

let verify_second_checkpoint fs2 posix2 =
  check Alcotest.string "rewrite present" "rewritten in second checkpoint"
    (P.read_file posix2 "/data/one");
  check Alcotest.string "new file present" "checkpoint two content"
    (P.read_file posix2 "/data/two");
  check Alcotest.bool "tag present" true
    (Fs.lookup fs2 [ (Tag.Udef, "fresh") ] <> []);
  Fs.verify fs2

let test_crash_before_flush_keeps_old_state () =
  let dev = mk_dev ~block_size:1024 ~blocks:16384 () in
  let fs = Fs.format ~index_mode:Fs.Eager ~journal_pages:512 dev in
  check Alcotest.bool "journaled" true (Fs.journaled fs);
  let posix = P.mount fs in
  populate fs posix;
  mutate fs posix;
  (* crash with NO flush: no-steal kept every dirty page off the device *)
  let crashed = snapshot dev in
  let fs2 = Fs.open_existing ~index_mode:Fs.Eager crashed in
  verify_first_checkpoint fs2 (P.mount fs2)

let test_crash_during_home_writes_replays_journal () =
  let dev = mk_dev ~block_size:1024 ~blocks:16384 () in
  let fs = Fs.format ~index_mode:Fs.Eager ~journal_pages:512 dev in
  let posix = P.mount fs in
  populate fs posix;
  mutate fs posix;
  (* Let the journal commit succeed, then crash partway through the
     in-place writes: allow the first 3 home writes, fail the rest.
     (Journal blocks are 2..513; home writes target other blocks.) *)
  let home_writes = ref 0 in
  Device.set_fault dev (fun op idx ->
      op = Device.Write && idx > 513
      && (incr home_writes;
          !home_writes > 3));
  (try
     Fs.flush fs;
     Alcotest.fail "flush should have crashed"
   with Device.Io_error _ -> ());
  Device.clear_fault dev;
  let crashed = snapshot dev in
  (* Reopen: recovery must replay the sealed journal and reach the
     complete second checkpoint despite the torn home writes. *)
  let fs2 = Fs.open_existing ~index_mode:Fs.Eager crashed in
  verify_second_checkpoint fs2 (P.mount fs2)

let test_clean_flush_then_reopen () =
  let dev = mk_dev ~block_size:1024 ~blocks:16384 () in
  let fs = Fs.format ~index_mode:Fs.Eager ~journal_pages:512 dev in
  let posix = P.mount fs in
  populate fs posix;
  mutate fs posix;
  Fs.flush fs;
  let fs2 = Fs.open_existing ~index_mode:Fs.Eager (snapshot dev) in
  verify_second_checkpoint fs2 (P.mount fs2);
  check Alcotest.bool "reopened journaled" true (Fs.journaled fs2)

let test_recovery_is_idempotent () =
  (* Crash during home writes, recover, then crash AGAIN immediately
     after recovery's own writes and recover once more. *)
  let dev = mk_dev ~block_size:1024 ~blocks:16384 () in
  let fs = Fs.format ~index_mode:Fs.Eager ~journal_pages:512 dev in
  let posix = P.mount fs in
  populate fs posix;
  mutate fs posix;
  let home_writes = ref 0 in
  Device.set_fault dev (fun op idx ->
      op = Device.Write && idx > 513
      && (incr home_writes;
          !home_writes > 3));
  (try Fs.flush fs with Device.Io_error _ -> ());
  Device.clear_fault dev;
  let crashed = snapshot dev in
  (* First recovery, but we "crash" again before it can be observed -
     i.e. we just reopen the same snapshot twice. *)
  let fs_a = Fs.open_existing ~index_mode:Fs.Eager crashed in
  verify_second_checkpoint fs_a (P.mount fs_a);
  let crashed2 = snapshot dev in
  let fs_b = Fs.open_existing ~index_mode:Fs.Eager crashed2 in
  verify_second_checkpoint fs_b (P.mount fs_b)

let test_unjournaled_has_no_journal () =
  let dev = mk_dev ~block_size:1024 ~blocks:4096 () in
  let fs = Fs.format dev in
  check Alcotest.bool "not journaled" false (Fs.journaled fs)

let test_journaled_no_steal_holds_dirty () =
  (* Between flushes, a journaled OSD must not let dirty pages reach the
     device (NO-STEAL) - that is what makes the crash test above pass. *)
  let dev = mk_dev ~block_size:1024 ~blocks:16384 () in
  let fs = Fs.format ~index_mode:Fs.Off ~journal_pages:64 dev in
  Fs.flush fs;
  Device.reset_stats dev;
  let oid = Fs.create fs ~content:(String.make 50_000 'd') in
  ignore oid;
  check Alcotest.int "no device writes before flush" 0
    (Device.stats dev).Device.writes

let suite =
  [
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal empty commit" `Quick test_journal_empty_commit;
    Alcotest.test_case "journal sequence" `Quick test_journal_sequence_advances;
    Alcotest.test_case "journal full" `Quick test_journal_full;
    Alcotest.test_case "unsealed commit discarded" `Quick
      test_journal_unsealed_discarded;
    Alcotest.test_case "journal bad magic" `Quick test_journal_bad_magic;
    Alcotest.test_case "crash before flush -> old state" `Quick
      test_crash_before_flush_keeps_old_state;
    Alcotest.test_case "crash during home writes -> replay" `Quick
      test_crash_during_home_writes_replays_journal;
    Alcotest.test_case "clean flush + reopen" `Quick test_clean_flush_then_reopen;
    Alcotest.test_case "recovery idempotent" `Quick test_recovery_is_idempotent;
    Alcotest.test_case "unjournaled fs" `Quick test_unjournaled_has_no_journal;
    Alcotest.test_case "no-steal holds dirty pages" `Quick
      test_journaled_no_steal_holds_dirty;
  ]
