(* Tests for Hfad_fulltext: Tokenizer, Fulltext, Lazy_indexer. *)

module Device = Hfad_blockdev.Device
module Pager = Hfad_pager.Pager
module Buddy = Hfad_alloc.Buddy
module Btree = Hfad_btree.Btree
module Oid = Hfad_osd.Oid
module Tokenizer = Hfad_fulltext.Tokenizer
module Fulltext = Hfad_fulltext.Fulltext
module Lazy_indexer = Hfad_fulltext.Lazy_indexer

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let oid i = Oid.of_int64 (Int64.of_int i)
let oid_t = Alcotest.testable Oid.pp Oid.equal

let mk_index () =
  let dev = Device.create ~block_size:1024 ~blocks:8192 () in
  let pager = Pager.create ~cache_pages:256 dev in
  let buddy = Buddy.create ~first_block:0 ~blocks:8192 () in
  let alloc =
    {
      Btree.alloc_page = (fun () -> Buddy.alloc buddy 1);
      Btree.free_page = (fun p -> Buddy.free buddy p);
    }
  in
  let root = Buddy.alloc buddy 1 in
  Fulltext.create (Btree.create pager alloc ~root)

(* --- Tokenizer --------------------------------------------------------- *)

let test_tokenizer_basic () =
  check (Alcotest.list Alcotest.string) "lowercase + split"
    [ "hello"; "world" ]
    (Tokenizer.tokens "Hello, WORLD!")

let test_tokenizer_stopwords () =
  check (Alcotest.list Alcotest.string) "stopwords removed"
    [ "cat"; "sat"; "mat" ]
    (Tokenizer.tokens "the cat sat on the mat")

let test_tokenizer_short_tokens_dropped () =
  check (Alcotest.list Alcotest.string) "single chars dropped" [ "ab" ]
    (Tokenizer.tokens "a b c ab")

let test_tokenizer_numbers () =
  check (Alcotest.list Alcotest.string) "alphanumerics kept"
    [ "photo"; "2009"; "img42" ]
    (Tokenizer.tokens "photo 2009 img42")

let test_tokenizer_long_token_truncated () =
  let long = String.make 100 'x' in
  match Tokenizer.tokens long with
  | [ tok ] -> check Alcotest.int "truncated" Tokenizer.max_token_len (String.length tok)
  | other -> Alcotest.failf "expected one token, got %d" (List.length other)

let test_tokenizer_custom_stopwords () =
  check (Alcotest.list Alcotest.string) "custom list"
    [ "the"; "word" ]
    (Tokenizer.tokens ~stopwords:[ "banana" ] "the banana word")

let test_term_frequencies () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counts" [ ("blue", 1); ("fish", 2) ]
    (Tokenizer.term_frequencies "fish blue fish")

let test_is_term () =
  check Alcotest.bool "valid" true (Tokenizer.is_term "hello42");
  check Alcotest.bool "upper" false (Tokenizer.is_term "Hello");
  check Alcotest.bool "short" false (Tokenizer.is_term "h");
  check Alcotest.bool "space" false (Tokenizer.is_term "two words")

let prop_tokens_are_terms =
  qtest
    (QCheck.Test.make ~name:"every emitted token is a valid term" ~count:300
       QCheck.(string_of_size QCheck.Gen.(0 -- 200))
       (fun text -> List.for_all Tokenizer.is_term (Tokenizer.tokens text)))

(* --- Fulltext ----------------------------------------------------------- *)

let test_index_and_search () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "the quick brown fox";
  Fulltext.add_document ft (oid 2) "the quick red dog";
  Fulltext.add_document ft (oid 3) "lazy brown dog";
  check (Alcotest.list oid_t) "single term" [ oid 1; oid 3 ]
    (Fulltext.search ft [ "brown" ]);
  check (Alcotest.list oid_t) "conjunction" [ oid 3 ]
    (Fulltext.search ft [ "brown"; "dog" ]);
  check (Alcotest.list oid_t) "no match" [] (Fulltext.search ft [ "cat" ]);
  check (Alcotest.list oid_t) "conjunction with dead term" []
    (Fulltext.search ft [ "brown"; "cat" ]);
  check Alcotest.int "doc count" 3 (Fulltext.doc_count ft);
  Fulltext.verify ft

let test_search_normalizes_query () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "Margo wrote BerkeleyDB";
  check (Alcotest.list oid_t) "case folded" [ oid 1 ]
    (Fulltext.search ft [ "MARGO" ]);
  check (Alcotest.list oid_t) "punctuation stripped" [ oid 1 ]
    (Fulltext.search ft [ "margo," ])

let test_document_frequency () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "alpha beta";
  Fulltext.add_document ft (oid 2) "alpha gamma";
  check Alcotest.int "df alpha" 2 (Fulltext.document_frequency ft "alpha");
  check Alcotest.int "df beta" 1 (Fulltext.document_frequency ft "beta");
  check Alcotest.int "df missing" 0 (Fulltext.document_frequency ft "delta")

let test_postings_tf () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 5) "echo echo echo canyon";
  check
    (Alcotest.list (Alcotest.pair oid_t Alcotest.int))
    "term frequency" [ (oid 5, 3) ] (Fulltext.postings ft "echo")

let test_reindex_replaces () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "old content here";
  Fulltext.add_document ft (oid 1) "fresh words now";
  check (Alcotest.list oid_t) "old gone" [] (Fulltext.search ft [ "old" ]);
  check (Alcotest.list oid_t) "new found" [ oid 1 ] (Fulltext.search ft [ "fresh" ]);
  check Alcotest.int "still one doc" 1 (Fulltext.doc_count ft);
  Fulltext.verify ft

let test_remove_document () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "shared unique1";
  Fulltext.add_document ft (oid 2) "shared unique2";
  Fulltext.remove_document ft (oid 1);
  check Alcotest.bool "unindexed" false (Fulltext.is_indexed ft (oid 1));
  check (Alcotest.list oid_t) "survivor still found" [ oid 2 ]
    (Fulltext.search ft [ "shared" ]);
  check Alcotest.int "df decremented" 1 (Fulltext.document_frequency ft "shared");
  check Alcotest.int "df zero removes record" 0
    (Fulltext.document_frequency ft "unique1");
  Fulltext.remove_document ft (oid 1);  (* idempotent *)
  check Alcotest.int "doc count" 1 (Fulltext.doc_count ft);
  Fulltext.verify ft

let test_scoring_prefers_rare_terms () =
  let ft = mk_index () in
  (* "common" appears everywhere; "rare" in one doc. A query for both
     must rank the doc that has rare high; and between two docs with the
     same terms, higher tf wins. *)
  for i = 1 to 20 do
    Fulltext.add_document ft (oid i) "common filler words everywhere"
  done;
  Fulltext.add_document ft (oid 100) "common rare";
  Fulltext.add_document ft (oid 101) "common rare rare rare";
  (match Fulltext.search_scored ft [ "rare" ] with
  | (first, s1) :: (second, s2) :: [] ->
      check oid_t "higher tf first" (oid 101) first;
      check oid_t "lower tf second" (oid 100) second;
      check Alcotest.bool "scores ordered" true (s1 > s2)
  | other -> Alcotest.failf "expected 2 hits, got %d" (List.length other));
  Fulltext.verify ft

let test_search_text () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "vacation photos from hawaii beach";
  Fulltext.add_document ft (oid 2) "hawaii business trip";
  check
    (Alcotest.list oid_t)
    "free text query" [ oid 1 ]
    (List.map fst (Fulltext.search_text ft "Hawaii BEACH!"))

let test_empty_queries () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "something";
  check (Alcotest.list oid_t) "empty list" [] (Fulltext.search ft []);
  check (Alcotest.list oid_t) "stopword-only query" []
    (Fulltext.search ft [ "the" ])

let test_stopword_only_document () =
  let ft = mk_index () in
  Fulltext.add_document ft (oid 1) "the and of";
  check Alcotest.int "counted" 1 (Fulltext.doc_count ft);
  Fulltext.remove_document ft (oid 1);
  check Alcotest.int "removed" 0 (Fulltext.doc_count ft);
  Fulltext.verify ft

let prop_search_finds_containing_docs =
  qtest
    (QCheck.Test.make ~name:"indexed term is always findable" ~count:60
       QCheck.(small_list (string_of_size QCheck.Gen.(1 -- 40)))
       (fun texts ->
         let ft = mk_index () in
         List.iteri (fun i text -> Fulltext.add_document ft (oid (i + 1)) text) texts;
         Fulltext.verify ft;
         List.for_all
           (fun (i, text) ->
             let id = oid (i + 1) in
             List.for_all
               (fun term -> List.exists (Oid.equal id) (Fulltext.search ft [ term ]))
               (Tokenizer.tokens text))
           (List.mapi (fun i text -> (i, text)) texts)))

(* --- Lazy_indexer -------------------------------------------------------- *)

let test_lazy_staleness_until_drain () =
  let ft = mk_index () in
  let ix = Lazy_indexer.create ft in
  Lazy_indexer.submit_add ix (oid 1) "pending document";
  (* §3.4 laziness: not yet visible to search. *)
  check (Alcotest.list oid_t) "stale before drain" []
    (Fulltext.search ft [ "pending" ]);
  check Alcotest.int "queued" 1 (Lazy_indexer.pending ix);
  check Alcotest.int "drained" 1 (Lazy_indexer.drain ix);
  check (Alcotest.list oid_t) "visible after drain" [ oid 1 ]
    (Fulltext.search ft [ "pending" ]);
  check Alcotest.int "queue empty" 0 (Lazy_indexer.pending ix)

let test_lazy_drain_bounded () =
  let ft = mk_index () in
  let ix = Lazy_indexer.create ft in
  for i = 1 to 10 do
    Lazy_indexer.submit_add ix (oid i) (Printf.sprintf "doc number%d" i)
  done;
  check Alcotest.int "partial drain" 4 (Lazy_indexer.drain ~max_items:4 ix);
  check Alcotest.int "rest queued" 6 (Lazy_indexer.pending ix);
  check Alcotest.int "doc count tracks drain" 4 (Fulltext.doc_count ft);
  Lazy_indexer.drain_all ix;
  check Alcotest.int "all indexed" 10 (Fulltext.doc_count ft);
  check Alcotest.int "processed total" 10 (Lazy_indexer.processed ix)

let test_lazy_remove_through_queue () =
  let ft = mk_index () in
  let ix = Lazy_indexer.create ft in
  Lazy_indexer.submit_add ix (oid 1) "ephemeral";
  Lazy_indexer.submit_remove ix (oid 1);
  Lazy_indexer.drain_all ix;
  check (Alcotest.list oid_t) "net effect: gone" []
    (Fulltext.search ft [ "ephemeral" ]);
  check Alcotest.int "doc count" 0 (Fulltext.doc_count ft)

let test_lazy_background_thread () =
  let ft = mk_index () in
  let ix = Lazy_indexer.create ft in
  Lazy_indexer.start_background ix;
  for i = 1 to 200 do
    Lazy_indexer.submit_add ix (oid i) (Printf.sprintf "background doc%d text" i)
  done;
  (* stop_background waits for the queue to empty. *)
  Lazy_indexer.stop_background ix;
  check Alcotest.int "everything indexed" 200 (Fulltext.doc_count ft);
  check (Alcotest.list oid_t) "searchable" [ oid 77 ]
    (Fulltext.search ft [ "doc77" ]);
  Fulltext.verify ft

let test_lazy_background_idempotent_controls () =
  let ft = mk_index () in
  let ix = Lazy_indexer.create ft in
  Lazy_indexer.start_background ix;
  Lazy_indexer.start_background ix;
  Lazy_indexer.submit_add ix (oid 1) "once";
  Lazy_indexer.stop_background ix;
  Lazy_indexer.stop_background ix;
  check Alcotest.int "indexed once" 1 (Fulltext.doc_count ft)

let suite =
  [
    Alcotest.test_case "tokenizer basics" `Quick test_tokenizer_basic;
    Alcotest.test_case "tokenizer stopwords" `Quick test_tokenizer_stopwords;
    Alcotest.test_case "tokenizer drops short tokens" `Quick
      test_tokenizer_short_tokens_dropped;
    Alcotest.test_case "tokenizer alphanumerics" `Quick test_tokenizer_numbers;
    Alcotest.test_case "tokenizer truncates long tokens" `Quick
      test_tokenizer_long_token_truncated;
    Alcotest.test_case "tokenizer custom stopwords" `Quick
      test_tokenizer_custom_stopwords;
    Alcotest.test_case "term frequencies" `Quick test_term_frequencies;
    Alcotest.test_case "is_term" `Quick test_is_term;
    prop_tokens_are_terms;
    Alcotest.test_case "index and search" `Quick test_index_and_search;
    Alcotest.test_case "query normalization" `Quick test_search_normalizes_query;
    Alcotest.test_case "document frequency" `Quick test_document_frequency;
    Alcotest.test_case "postings carry tf" `Quick test_postings_tf;
    Alcotest.test_case "reindex replaces" `Quick test_reindex_replaces;
    Alcotest.test_case "remove document" `Quick test_remove_document;
    Alcotest.test_case "tf-idf ranking" `Quick test_scoring_prefers_rare_terms;
    Alcotest.test_case "search_text" `Quick test_search_text;
    Alcotest.test_case "empty queries" `Quick test_empty_queries;
    Alcotest.test_case "stopword-only document" `Quick test_stopword_only_document;
    prop_search_finds_containing_docs;
    Alcotest.test_case "lazy: stale until drained" `Quick
      test_lazy_staleness_until_drain;
    Alcotest.test_case "lazy: bounded drain" `Quick test_lazy_drain_bounded;
    Alcotest.test_case "lazy: remove through queue" `Quick
      test_lazy_remove_through_queue;
    Alcotest.test_case "lazy: background thread" `Slow test_lazy_background_thread;
    Alcotest.test_case "lazy: idempotent start/stop" `Quick
      test_lazy_background_idempotent_controls;
  ]
