(* C2 — §2.3's concurrency claim: "/home/nick and /home/margo are
   functionally unrelated most of the time, yet accessing them requires
   synchronizing read access through a shared ancestor directory."

   Eight users each own a private directory of 64 files. Domains resolve
   random paths strictly inside their own user's subtree — a perfectly
   partitionable workload. The hierarchical walk still locks "/" and
   "/home" on every single resolution; hFAD's one-descent resolution
   takes no namespace locks at all.

   The structural metrics (exact, machine-independent): namespace lock
   acquisitions, acquisitions on shared ancestors, and observed lock
   waits. Wall-clock throughput is also printed, with the caveat that
   this container exposes a single core, so parallel speedup is not
   observable here — the lock footprint is the portable result. *)

module Device = Hfad_blockdev.Device
module Rng = Hfad_util.Rng
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module P = Hfad_posix.Posix_fs
module H = Hfad_hierfs.Hierfs
open Bench_util

let users = 8
let files_per_user = 64
let total_ops = 16_000

let path u f = Printf.sprintf "/home/user%d/file%02d.txt" u f

let build_hier () =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let h = H.format ~cache_pages:4096 dev in
  for u = 0 to users - 1 do
    H.mkdir_p h (Printf.sprintf "/home/user%d" u);
    for f = 0 to files_per_user - 1 do
      ignore (H.create_file ~content:"x" h (path u f))
    done
  done;
  (* Warm caches so the parallel phase mutates nothing. *)
  for u = 0 to users - 1 do
    ignore (H.resolve h (path u 0))
  done;
  h

let build_hfad () =
  let dev = Device.create ~block_size:1024 ~blocks:65536 () in
  let fs = Fs.format ~cache_pages:4096 ~index_mode:Fs.Off dev in
  let posix = P.mount fs in
  for u = 0 to users - 1 do
    P.mkdir_p posix (Printf.sprintf "/home/user%d" u);
    for f = 0 to files_per_user - 1 do
      ignore (P.create_file ~content:"x" posix (path u f))
    done
  done;
  ignore (P.resolve posix (path 0 0));
  (fs, posix)

let parallel ~domains f =
  let ops_each = total_ops / domains in
  let _, ms =
    time_ms (fun () ->
        let spawned =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  let rng = Rng.create (Int64.of_int (1000 + d)) in
                  for _ = 1 to ops_each do
                    f d rng
                  done))
        in
        List.iter Domain.join spawned)
  in
  float_of_int (ops_each * domains) /. ms *. 1000.

let run () =
  heading "C2: parallel resolution through a shared ancestor";
  let h = build_hier () in
  let fs, posix = build_hfad () in
  let resolve_hier d rng =
    ignore (H.resolve h (path d (Rng.int rng files_per_user)))
  in
  let resolve_hfad d rng =
    ignore (P.resolve posix (path d (Rng.int rng files_per_user)))
  in
  ignore fs;
  let rows =
    List.concat_map
      (fun domains ->
        H.reset_lock_stats h;
        let hier_tput = parallel ~domains resolve_hier in
        let acq, waits = H.lock_stats h in
        (* Each resolution locks every directory on its path: "/",
           "/home", "/home/userX" - the first two are shared ancestors. *)
        let shared = 2 * total_ops in
        let hfad_tput = parallel ~domains resolve_hfad in
        [
          [
            fmt_int domains; "hierarchical";
            Printf.sprintf "%.0f" hier_tput; fmt_int acq; fmt_int shared;
            fmt_int waits;
          ];
          [
            ""; "hFAD";
            Printf.sprintf "%.0f" hfad_tput; "0"; "0"; "0";
          ];
        ])
      [ 1; 2; 4; 8 ]
  in
  table
    ([
       [
         "domains"; "system"; "resolves/s"; "namespace locks";
         "thru shared ancestors"; "lock waits";
       ];
     ]
    @ rows);
  say "";
  say "expected shape: hierarchical takes 3 namespace locks per resolve (2 on";
  say "shared ancestors) and accumulates waits once domains > 1; hFAD takes";
  say "none. (single-core container: throughput scaling not observable here)"
