(* Shared helpers for the experiment harness: aligned table printing,
   wall-clock timing, and counter deltas. *)

module Registry = Hfad_metrics.Registry

let say fmt = Format.printf (fmt ^^ "@.")

let heading title =
  say "";
  say "==== %s ====" title

(* Print rows as an aligned table; the first row is the header. *)
let table rows =
  match rows with
  | [] -> ()
  | header :: _ ->
      let columns = List.length header in
      let width col =
        List.fold_left
          (fun acc row ->
            match List.nth_opt row col with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 rows
      in
      let widths = List.init columns width in
      let print_row row =
        let cells =
          List.mapi
            (fun i cell ->
              let pad = List.nth widths i - String.length cell in
              cell ^ String.make (max 0 pad) ' ')
            row
        in
        say "  %s" (String.concat "  " cells)
      in
      print_row header;
      print_row (List.map (fun w -> String.make w '-') widths);
      List.iter print_row (List.tl rows)

(* Milliseconds of wall clock for one run of [f]. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, 1000. *. (Unix.gettimeofday () -. t0))

(* Median wall time in microseconds over [n] runs. *)
let median_us ?(n = 21) f =
  let samples =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        1_000_000. *. (Unix.gettimeofday () -. t0))
  in
  List.nth (List.sort compare samples) (n / 2)

(* Global-counter delta produced by one run of [f]. *)
let counters_of f =
  let snap = Registry.snapshot Registry.global in
  let result = f () in
  (result, Registry.diff Registry.global snap)

let counter deltas name = Option.value ~default:0 (List.assoc_opt name deltas)

let fmt_int = string_of_int
let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_us v = Printf.sprintf "%.1fus" v
let fmt_ratio v = Printf.sprintf "%.1fx" v
