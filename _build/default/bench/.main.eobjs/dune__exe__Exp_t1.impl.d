bench/exp_t1.ml: Bench_util Hfad Hfad_blockdev Hfad_index Hfad_osd Hfad_posix Hfad_util Hfad_workload List
