bench/exp_c1.ml: Bench_util Hfad Hfad_blockdev Hfad_hierfs Hfad_posix List Printf String
