bench/exp_c4.ml: Bench_util Hfad Hfad_alloc Hfad_blockdev Hfad_hierfs Hfad_index Hfad_osd Hfad_posix List Printf String
