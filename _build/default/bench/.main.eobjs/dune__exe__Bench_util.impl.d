bench/bench_util.ml: Format Hfad_metrics List Option Printf String Sys Unix
