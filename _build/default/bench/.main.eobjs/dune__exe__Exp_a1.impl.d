bench/exp_a1.ml: Bench_util Hfad Hfad_blockdev Hfad_index Hfad_osd List
