bench/main.ml: Array Exp_a1 Exp_c1 Exp_c2 Exp_c3 Exp_c4 Exp_c5 Exp_c6 Exp_f1 Exp_m1 Exp_t1 Format List Micro String Sys
