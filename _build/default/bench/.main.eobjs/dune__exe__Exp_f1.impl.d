bench/exp_f1.ml: Bench_util Bytes Hfad Hfad_alloc Hfad_blockdev Hfad_btree Hfad_index Hfad_osd Hfad_pager Hfad_posix Hfad_util List Printf String
