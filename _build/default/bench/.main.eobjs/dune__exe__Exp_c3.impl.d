bench/exp_c3.ml: Bench_util Hfad Hfad_blockdev Hfad_hierfs Hfad_osd Hfad_pager List Printf String
