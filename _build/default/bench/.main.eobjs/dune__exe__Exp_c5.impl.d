bench/exp_c5.ml: Bench_util Hfad Hfad_blockdev Hfad_hierfs Hfad_index Hfad_posix Hfad_util Hfad_workload List String
