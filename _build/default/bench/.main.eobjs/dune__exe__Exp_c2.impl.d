bench/exp_c2.ml: Bench_util Domain Hfad Hfad_blockdev Hfad_hierfs Hfad_index Hfad_posix Hfad_util Int64 List Printf
