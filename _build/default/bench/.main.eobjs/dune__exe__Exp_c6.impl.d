bench/exp_c6.ml: Bench_util Hfad Hfad_blockdev Hfad_fulltext Hfad_index Hfad_posix Hfad_util Hfad_workload List Printf
