bench/exp_m1.ml: Bench_util Hfad Hfad_blockdev Hfad_hierfs Hfad_posix Hfad_util Hfad_workload Option Printf
