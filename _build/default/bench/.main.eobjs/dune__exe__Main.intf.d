bench/main.mli:
