(** Buddy storage allocator (Knuth, TAOCP vol. 1 §2.5) over device blocks.

    This is the bottom layer of the OSD (§3.4 of the paper: "The lowest
    layer of the OSD is a buddy storage allocator"). Requests are rounded
    up to the next power-of-two number of blocks; freeing coalesces a
    block with its buddy recursively, which bounds external fragmentation
    and makes both operations O(log n).

    A managed region of arbitrary size is covered by a list of maximal
    power-of-two {e arenas} (e.g. 100 blocks = 64 + 32 + 4), each of
    which behaves as an independent classic buddy system; buddy addresses
    are computed relative to the arena base, so blocks never coalesce
    across arena boundaries.

    Allocations are remembered (start → order), so [free] needs only the
    start address and double frees are detected. *)

type t

exception Out_of_space of { requested_blocks : int }
exception Invalid_free of { start : int }

val create : ?min_order:int -> first_block:int -> blocks:int -> unit -> t
(** [create ~first_block ~blocks ()] manages the block range
    [\[first_block, first_block + blocks)]. [min_order] (default 0) is
    the smallest allocation granularity as a power of two: requests
    smaller than [2^min_order] blocks still consume [2^min_order].
    @raise Invalid_argument if [blocks <= 0], [first_block < 0] or
    [min_order < 0]. *)

val alloc : t -> int -> int
(** [alloc t n] reserves at least [n >= 1] blocks and returns the start
    block of the reservation. The actual reservation is [alloc_size t n]
    blocks. @raise Out_of_space when no free run is large enough.
    @raise Invalid_argument if [n <= 0]. *)

val alloc_size : t -> int -> int
(** The number of blocks an [alloc t n] would actually reserve
    ([n] rounded up to a power of two, at least [2^min_order]). *)

val reserve : t -> start:int -> blocks:int -> unit
(** [reserve t ~start ~blocks] claims the specific run
    [\[start, start + blocks)], which must be a power-of-two size, aligned
    to that size within its arena, and currently entirely free. Used when
    reopening a device to re-mark the allocations a previous run made.
    @raise Invalid_argument if the geometry is wrong or the run is not
    free. *)

val free : t -> int -> unit
(** [free t start] releases the allocation that begins at [start].
    @raise Invalid_free if [start] is not the start of a live
    allocation. *)

val size_of : t -> int -> int
(** [size_of t start] is the reserved size in blocks of the live
    allocation at [start]. @raise Invalid_free if unknown. *)

val is_allocated : t -> int -> bool
(** Whether [start] is the start of a live allocation. *)

(** {1 Introspection} *)

type stats = {
  total_blocks : int;
  free_blocks : int;
  live_allocations : int;
  largest_free_run : int;  (** largest single free buddy block, in blocks *)
  splits : int;
  coalesces : int;
}

val stats : t -> stats

val fragmentation : t -> float
(** [1 - largest_free_run / free_blocks]; 0 when memory is one free run
    or when nothing is free. *)

val check_invariants : t -> unit
(** Validates internal consistency (free lists disjoint from allocations,
    conservation of blocks, buddy alignment). @raise Failure with a
    description on violation. Intended for tests. *)

val pp_stats : Format.formatter -> stats -> unit
