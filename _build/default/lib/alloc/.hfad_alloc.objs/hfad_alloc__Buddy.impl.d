lib/alloc/buddy.ml: Array Format Hashtbl List
