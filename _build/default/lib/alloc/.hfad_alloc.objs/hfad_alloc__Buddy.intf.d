lib/alloc/buddy.mli: Format
