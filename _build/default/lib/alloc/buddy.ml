exception Out_of_space of { requested_blocks : int }
exception Invalid_free of { start : int }

type arena = { base : int; order : int }

type t = {
  min_order : int;
  max_order : int;
  arenas : arena list;  (* sorted by base, descending order *)
  free : (int, unit) Hashtbl.t array;  (* free.(k) = set of free starts of order k *)
  allocated : (int, int) Hashtbl.t;  (* start -> order *)
  total_blocks : int;
  mutable free_blocks : int;
  mutable splits : int;
  mutable coalesces : int;
}

type stats = {
  total_blocks : int;
  free_blocks : int;
  live_allocations : int;
  largest_free_run : int;
  splits : int;
  coalesces : int;
}

let order_for_blocks ~min_order n =
  let rec loop order size = if size >= n then order else loop (order + 1) (size * 2) in
  loop min_order (1 lsl min_order)

(* Greedy cover of [base, base + blocks) by maximal aligned power-of-two
   arenas no smaller than 2^min_order; a tail smaller than the minimum
   granularity is left unmanaged. *)
let carve_arenas ~min_order ~first_block ~blocks =
  let rec loop base remaining acc =
    if remaining < 1 lsl min_order then List.rev acc
    else
      let rec largest order =
        if 1 lsl (order + 1) <= remaining then largest (order + 1) else order
      in
      let order = largest min_order in
      let size = 1 lsl order in
      loop (base + size) (remaining - size) ({ base; order } :: acc)
  in
  loop first_block blocks []

let create ?(min_order = 0) ~first_block ~blocks () =
  if blocks <= 0 then invalid_arg "Buddy.create: blocks";
  if first_block < 0 then invalid_arg "Buddy.create: first_block";
  if min_order < 0 then invalid_arg "Buddy.create: min_order";
  let arenas = carve_arenas ~min_order ~first_block ~blocks in
  if arenas = [] then invalid_arg "Buddy.create: region smaller than min_order";
  let max_order = List.fold_left (fun m a -> max m a.order) 0 arenas in
  let free = Array.init (max_order + 1) (fun _ -> Hashtbl.create 16) in
  List.iter (fun a -> Hashtbl.replace free.(a.order) a.base ()) arenas;
  let managed = List.fold_left (fun acc a -> acc + (1 lsl a.order)) 0 arenas in
  {
    min_order;
    max_order;
    arenas;
    free;
    allocated = Hashtbl.create 64;
    total_blocks = managed;
    free_blocks = managed;
    splits = 0;
    coalesces = 0;
  }

let arena_of t start =
  let rec find = function
    | [] -> raise (Invalid_free { start })
    | a :: rest ->
        if start >= a.base && start < a.base + (1 lsl a.order) then a
        else find rest
  in
  find t.arenas

let alloc_size t n =
  if n <= 0 then invalid_arg "Buddy.alloc_size: n";
  1 lsl order_for_blocks ~min_order:t.min_order n

(* Take any free block of exactly [order], if one exists. *)
let pop_free t order =
  let table = t.free.(order) in
  match Hashtbl.length table with
  | 0 -> None
  | _ ->
      let start = Hashtbl.fold (fun k () _ -> Some k) table None in
      (match start with
      | Some s ->
          Hashtbl.remove table s;
          Some s
      | None -> None)

let alloc t n =
  if n <= 0 then invalid_arg "Buddy.alloc: n";
  let want = order_for_blocks ~min_order:t.min_order n in
  if want > t.max_order then raise (Out_of_space { requested_blocks = n });
  (* Find the smallest order >= want with a free block, then split down. *)
  let rec find order =
    if order > t.max_order then raise (Out_of_space { requested_blocks = n })
    else
      match pop_free t order with
      | Some start -> (start, order)
      | None -> find (order + 1)
  in
  let start, got = find want in
  let rec split start order =
    if order = want then start
    else begin
      let half = order - 1 in
      let buddy = start + (1 lsl half) in
      Hashtbl.replace t.free.(half) buddy ();
      t.splits <- t.splits + 1;
      split start half
    end
  in
  let start = split start got in
  Hashtbl.replace t.allocated start want;
  t.free_blocks <- t.free_blocks - (1 lsl want);
  start

let reserve t ~start ~blocks =
  if blocks <= 0 || blocks land (blocks - 1) <> 0 then
    invalid_arg "Buddy.reserve: blocks must be a positive power of two";
  let order =
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 blocks 0
  in
  if order < t.min_order then invalid_arg "Buddy.reserve: below min_order";
  let arena =
    try arena_of t start
    with Invalid_free _ -> invalid_arg "Buddy.reserve: outside managed region"
  in
  if (start - arena.base) land (blocks - 1) <> 0 then
    invalid_arg "Buddy.reserve: misaligned run";
  if order > arena.order then invalid_arg "Buddy.reserve: larger than arena";
  (* Find the smallest free ancestor block containing the run. *)
  let rec find_ancestor k =
    if k > arena.order then invalid_arg "Buddy.reserve: run not free"
    else
      let candidate = arena.base + ((start - arena.base) land lnot ((1 lsl k) - 1)) in
      if Hashtbl.mem t.free.(k) candidate then (candidate, k)
      else find_ancestor (k + 1)
  in
  let ancestor, k = find_ancestor order in
  Hashtbl.remove t.free.(k) ancestor;
  (* Split down toward the target, freeing the halves we do not keep. *)
  let rec split blk k =
    if k = order then blk
    else begin
      let half = k - 1 in
      let low = blk and high = blk + (1 lsl half) in
      let keep, other = if start >= high then (high, low) else (low, high) in
      Hashtbl.replace t.free.(half) other ();
      t.splits <- t.splits + 1;
      split keep half
    end
  in
  let blk = split ancestor k in
  assert (blk = start);
  Hashtbl.replace t.allocated start order;
  t.free_blocks <- t.free_blocks - (1 lsl order)

let free t start =
  match Hashtbl.find_opt t.allocated start with
  | None -> raise (Invalid_free { start })
  | Some order ->
      Hashtbl.remove t.allocated start;
      t.free_blocks <- t.free_blocks + (1 lsl order);
      let arena = arena_of t start in
      (* Coalesce with the buddy while it is free, up to the arena size. *)
      let rec merge start order =
        if order >= arena.order then (start, order)
        else
          let rel = start - arena.base in
          let buddy = arena.base + (rel lxor (1 lsl order)) in
          if Hashtbl.mem t.free.(order) buddy then begin
            Hashtbl.remove t.free.(order) buddy;
            t.coalesces <- t.coalesces + 1;
            merge (min start buddy) (order + 1)
          end
          else (start, order)
      in
      let start, order = merge start order in
      Hashtbl.replace t.free.(order) start ()

let size_of t start =
  match Hashtbl.find_opt t.allocated start with
  | Some order -> 1 lsl order
  | None -> raise (Invalid_free { start })

let is_allocated t start = Hashtbl.mem t.allocated start

let largest_free_run t =
  let rec loop order =
    if order < t.min_order then 0
    else if Hashtbl.length t.free.(order) > 0 then 1 lsl order
    else loop (order - 1)
  in
  loop t.max_order

let stats (t : t) =
  {
    total_blocks = t.total_blocks;
    free_blocks = t.free_blocks;
    live_allocations = Hashtbl.length t.allocated;
    largest_free_run = largest_free_run t;
    splits = t.splits;
    coalesces = t.coalesces;
  }

let fragmentation (t : t) =
  if t.free_blocks = 0 then 0.
  else 1. -. (float_of_int (largest_free_run t) /. float_of_int t.free_blocks)

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* 1. Conservation: free blocks + allocated blocks = managed blocks. *)
  let free_total =
    Array.to_list t.free
    |> List.mapi (fun order table -> Hashtbl.length table * (1 lsl order))
    |> List.fold_left ( + ) 0
  in
  let allocated_total =
    Hashtbl.fold (fun _ order acc -> acc + (1 lsl order)) t.allocated 0
  in
  if free_total <> t.free_blocks then
    fail "free accounting drift: counted %d, recorded %d" free_total
      t.free_blocks;
  if free_total + allocated_total <> t.total_blocks then
    fail "conservation violated: %d free + %d allocated <> %d total"
      free_total allocated_total t.total_blocks;
  (* 2. Alignment: every free or allocated block is buddy-aligned within
     its arena. *)
  let check_aligned start order =
    let arena = arena_of t start in
    if (start - arena.base) land ((1 lsl order) - 1) <> 0 then
      fail "block %d of order %d misaligned in arena %d" start order
        arena.base
  in
  Array.iteri
    (fun order table -> Hashtbl.iter (fun s () -> check_aligned s order) table)
    t.free;
  Hashtbl.iter (fun s order -> check_aligned s order) t.allocated;
  (* 3. Disjointness: no block is both free and allocated, and no two
     free blocks overlap. *)
  let intervals = ref [] in
  Array.iteri
    (fun order table ->
      Hashtbl.iter (fun s () -> intervals := (s, s + (1 lsl order)) :: !intervals) table)
    t.free;
  Hashtbl.iter
    (fun s order -> intervals := (s, s + (1 lsl order)) :: !intervals)
    t.allocated;
  let sorted = List.sort compare !intervals in
  let rec overlap = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
        if s2 < e1 then fail "overlapping extents at block %d" s2;
        overlap rest
    | [ _ ] | [] -> ()
  in
  overlap sorted

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "total=%d free=%d live=%d largest_free=%d splits=%d coalesces=%d"
    s.total_blocks s.free_blocks s.live_allocations s.largest_free_run
    s.splits s.coalesces
