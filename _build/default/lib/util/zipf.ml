type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let n t = Array.length t.cdf

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* First index whose cumulative probability exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length t.cdf - 1)

let expected_probability t k =
  if k < 0 || k >= Array.length t.cdf then
    invalid_arg "Zipf.expected_probability: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
