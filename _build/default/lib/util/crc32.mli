(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used as the torn-page detector: every on-device page carries a
    checksum of its payload, verified on read. *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** Checksum of a byte range. @raise Invalid_argument on bad range. *)

val string : string -> int32
(** Checksum of a whole string. *)
