let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let next_prefix p =
  (* Increment the last byte that is not 0xff, dropping the tail. *)
  let rec find i =
    if i < 0 then None
    else if p.[i] = '\xff' then find (i - 1)
    else
      Some (String.sub p 0 i ^ String.make 1 (Char.chr (Char.code p.[i] + 1)))
  in
  find (String.length p - 1)

let split_on_char_nonempty c s =
  List.filter (fun part -> part <> "") (String.split_on_char c s)

let is_printable_ascii s =
  let ok = ref true in
  String.iter (fun ch -> if ch < ' ' || ch > '~' then ok := false) s;
  !ok
