let put_u8 buf off v = Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xff))
let get_u8 buf off = Char.code (Bytes.get buf off)

let put_u16 buf off v = Bytes.set_uint16_be buf off v
let get_u16 buf off = Bytes.get_uint16_be buf off

let put_u32 buf off v =
  Bytes.set_int32_be buf off (Int32.of_int v)

let get_u32 buf off =
  (* Mask to recover the unsigned value on 64-bit OCaml ints. *)
  Int32.to_int (Bytes.get_int32_be buf off) land 0xFFFFFFFF

let put_i64 buf off v = Bytes.set_int64_be buf off v
let get_i64 buf off = Bytes.get_int64_be buf off

let sign_flip = 0x8000000000000000L

let encode_i64_key v =
  let buf = Bytes.create 8 in
  Bytes.set_int64_be buf 0 (Int64.logxor v sign_flip);
  Bytes.unsafe_to_string buf

let decode_i64_key s =
  if String.length s <> 8 then invalid_arg "Codec.decode_i64_key: need 8 bytes";
  Int64.logxor (String.get_int64_be s 0) sign_flip

let varint_size v =
  if v < 0 then invalid_arg "Codec.varint_size: negative";
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1

let put_varint buf off v =
  if v < 0 then invalid_arg "Codec.put_varint: negative";
  let rec loop off v =
    if v < 0x80 then begin
      put_u8 buf off v;
      off + 1
    end else begin
      put_u8 buf off (0x80 lor (v land 0x7f));
      loop (off + 1) (v lsr 7)
    end
  in
  loop off v

let get_varint buf off =
  let rec loop off shift acc =
    let b = get_u8 buf off in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, off + 1) else loop (off + 1) (shift + 7) acc
  in
  loop off 0 0

let string_size s = varint_size (String.length s) + String.length s

let put_string buf off s =
  let off = put_varint buf off (String.length s) in
  Bytes.blit_string s 0 buf off (String.length s);
  off + String.length s

let get_string buf off =
  let len, off = get_varint buf off in
  (Bytes.sub_string buf off len, off + len)
