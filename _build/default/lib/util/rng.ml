type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift-multiply avalanche of the counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let child_seed = next_int64 t in
  { state = child_seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the low 62 bits to get a non-negative OCaml int, then reduce.
     Modulo bias is below 2^-40 for any bound that fits in an int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let scratch = Array.copy arr in
  (* Partial Fisher-Yates: after i swaps the first i slots are a uniform
     sample without replacement. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k
