(** Binary encoding primitives shared by every on-"disk" structure.

    All multi-byte integers are big-endian so that the byte order of an
    encoded key matches its numeric order — B-tree pages can then compare
    serialized keys with [Bytes.compare] without decoding. Variable-length
    integers use the LEB128-style scheme (7 bits per byte, high bit =
    continuation). *)

(** {1 Fixed-width encodings} *)

val put_u8 : Bytes.t -> int -> int -> unit
(** [put_u8 buf off v] stores the low 8 bits of [v] at [off]. *)

val get_u8 : Bytes.t -> int -> int

val put_u16 : Bytes.t -> int -> int -> unit
(** Big-endian 16-bit. [v] must fit in 16 bits. *)

val get_u16 : Bytes.t -> int -> int

val put_u32 : Bytes.t -> int -> int -> unit
(** Big-endian 32-bit; [v] must be in [\[0, 2^32)]. *)

val get_u32 : Bytes.t -> int -> int

val put_i64 : Bytes.t -> int -> int64 -> unit
(** Big-endian 64-bit. *)

val get_i64 : Bytes.t -> int -> int64

(** {1 Order-preserving int64 key encoding} *)

val encode_i64_key : int64 -> string
(** 8-byte big-endian encoding with the sign bit flipped, so that
    [compare (encode_i64_key a) (encode_i64_key b) = Int64.compare a b]
    for all [a], [b], including negatives. *)

val decode_i64_key : string -> int64
(** Inverse of {!encode_i64_key}. @raise Invalid_argument if the string
    is not exactly 8 bytes. *)

(** {1 Variable-length integers} *)

val varint_size : int -> int
(** Encoded size in bytes of a non-negative int. *)

val put_varint : Bytes.t -> int -> int -> int
(** [put_varint buf off v] writes [v >= 0], returns the new offset. *)

val get_varint : Bytes.t -> int -> int * int
(** [get_varint buf off] returns [(value, new_offset)]. *)

(** {1 Length-prefixed strings} *)

val string_size : string -> int
(** Encoded size of a length-prefixed string. *)

val put_string : Bytes.t -> int -> string -> int
(** Writes varint length + bytes; returns new offset. *)

val get_string : Bytes.t -> int -> string * int
(** Returns [(value, new_offset)]. *)
