(* within the library, Strx is a sibling module *)

let normalize p =
  let parts = Strx.split_on_char_nonempty '/' p in
  let resolved =
    List.fold_left
      (fun stack part ->
        match part with
        | "." -> stack
        | ".." -> ( match stack with [] -> [] | _ :: rest -> rest)
        | name -> name :: stack)
      [] parts
  in
  match List.rev resolved with
  | [] -> "/"
  | parts -> "/" ^ String.concat "/" parts

let components p =
  match normalize p with
  | "/" -> []
  | normal -> Strx.split_on_char_nonempty '/' normal

let parent p =
  match List.rev (components p) with
  | [] | [ _ ] -> "/"
  | _ :: rest -> "/" ^ String.concat "/" (List.rev rest)

let basename p =
  match List.rev (components p) with [] -> "" | last :: _ -> last

let join dir name = normalize (dir ^ "/" ^ name)
let depth p = List.length (components p)

let is_ancestor ~ancestor p =
  let ancestor = normalize ancestor and p = normalize p in
  ancestor <> p
  && (ancestor = "/" || Strx.starts_with ~prefix:(ancestor ^ "/") p)

let replace_prefix ~old_prefix ~new_prefix p =
  let old_prefix = normalize old_prefix
  and new_prefix = normalize new_prefix
  and p = normalize p in
  if p = old_prefix then new_prefix
  else if is_ancestor ~ancestor:old_prefix p then
    let tail = String.sub p (String.length old_prefix)
        (String.length p - String.length old_prefix)
    in
    normalize (new_prefix ^ tail)
  else invalid_arg "Path.replace_prefix: path not under old prefix"
