(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    workloads, property tests and experiments are reproducible from a seed.
    The generator is splitmix64 (Steele, Lea & Flood 2014): a tiny,
    statistically solid 64-bit generator whose state is a single [int64],
    which makes [split] trivial and cheap. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and derives an independent child generator.
    Use one child per workload component so that adding draws to one
    component does not perturb the others. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] returns [k] distinct elements drawn without
    replacement (order random). @raise Invalid_argument if
    [k > Array.length arr] or [k < 0]. *)
