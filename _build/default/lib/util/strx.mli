(** Small string utilities used across layers. *)

val common_prefix_len : string -> string -> int
(** Length of the longest common prefix. *)

val starts_with : prefix:string -> string -> bool

val next_prefix : string -> string option
(** [next_prefix p] is the smallest string strictly greater than every
    string that has prefix [p], or [None] if no such string exists
    (i.e. [p] is empty or all [0xff]). Used to turn a prefix query into a
    half-open key range [\[p, next_prefix p)]. *)

val split_on_char_nonempty : char -> string -> string list
(** Like [String.split_on_char] but drops empty components:
    ["/a//b/"] on ['/'] gives [\["a"; "b"\]]. *)

val is_printable_ascii : string -> bool
(** True when every byte is in the printable ASCII range (space..tilde). *)
