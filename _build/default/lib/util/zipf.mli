(** Zipf-distributed sampling.

    File popularity, search-term frequency and tag reuse are all heavily
    skewed in the workloads the paper motivates (photo libraries, email,
    desktop search); a Zipf distribution with exponent around 1 is the
    standard model. The sampler precomputes the CDF once, so draws are a
    binary search — O(log n) per sample, deterministic given the RNG. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [1..n] with exponent [s]
    (probability of rank [k] proportional to [1 / k^s]). [s = 0.] is the
    uniform distribution. @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val n : t -> int
(** Number of ranks. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[0, n)] (rank 0 is the most
    popular). *)

val expected_probability : t -> int -> float
(** [expected_probability t k] is the exact probability of rank [k];
    useful for statistical tests. *)
