lib/util/rng.mli:
