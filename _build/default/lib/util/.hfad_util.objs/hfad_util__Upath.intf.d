lib/util/upath.mli:
