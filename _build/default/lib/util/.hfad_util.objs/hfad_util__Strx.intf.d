lib/util/strx.mli:
