lib/util/codec.mli: Bytes
