lib/util/strx.ml: Char List String
