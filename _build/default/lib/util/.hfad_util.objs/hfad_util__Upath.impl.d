lib/util/upath.ml: List String Strx
