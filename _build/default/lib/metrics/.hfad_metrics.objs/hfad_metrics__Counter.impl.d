lib/metrics/counter.ml: Atomic Format
