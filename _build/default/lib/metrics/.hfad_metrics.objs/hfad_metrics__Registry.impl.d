lib/metrics/registry.ml: Counter Format List Mutex String
