lib/metrics/registry.mli: Counter Format
