(** Lazy background full-text indexing.

    §3.4: "we use background threads to perform lazy full-text indexing."
    Writers enqueue work and return immediately; the index catches up
    later, so a freshly written document is {e findable by ID or tag at
    once but by content only after the indexer drains} — experiment C6
    measures that staleness window.

    Two draining modes:
    - deterministic: call {!drain} (or {!drain_all}) explicitly — used by
      tests and experiments;
    - background: {!start_background} spawns a worker thread that drains
      continuously until {!stop_background}. *)

type t

type work =
  | Index of Hfad_osd.Oid.t * string  (** (re-)index this text *)
  | Unindex of Hfad_osd.Oid.t

val create : Fulltext.t -> t

val submit : t -> work -> unit
(** Enqueue; never blocks. *)

val submit_add : t -> Hfad_osd.Oid.t -> string -> unit
val submit_remove : t -> Hfad_osd.Oid.t -> unit

val pending : t -> int
(** Items not yet applied to the index. *)

val drain : ?max_items:int -> t -> int
(** Apply up to [max_items] (default: everything queued right now);
    returns how many were applied. *)

val drain_all : t -> unit

val start_background : t -> unit
(** Spawn the worker thread. No-op if already running. *)

val stop_background : t -> unit
(** Drain the queue, then stop and join the worker. No-op if not
    running. *)

val processed : t -> int
(** Total items applied since creation. *)
