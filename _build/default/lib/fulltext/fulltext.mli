(** The full-text index store — hFAD's Lucene substitute (§3.4: "we use
    Lucene for full-text search indices").

    The inverted index lives in a B-tree on the same device as everything
    else ("we've ported both Berkeley DB and Lucene to sit atop the raw
    device and the storage allocator"), so full-text lookups are index
    traversals measurable by the same counters as the rest of the system.

    Key layout inside the backing tree (term bytes never contain ['\000']
    because the tokenizer emits lowercase alphanumerics):

    - ["P" term '\000' oid8]  → varint term frequency   (postings)
    - ["G" oid8 term]         → empty                    (forward index,
      so a document can be un-indexed without its text)
    - ["F" term]              → varint document frequency
    - ["D" oid8]              → varint token count of the document
    - ["N"]                   → varint number of documents

    A postings scan ([fold_prefix] on ["P" term '\000']) yields OIDs in
    ascending order because the OID encoding is order-preserving, so
    conjunctive queries are sorted-list intersections, cheapest-term
    first — the query-processing lesson the paper carries over from the
    authors' provenance work [3].

    All operations are serialized by an internal mutex so a background
    {!Lazy_indexer} thread can feed the index while readers query it. *)

type t

val create : Hfad_btree.Btree.t -> t
(** Wrap a B-tree (empty for a fresh index, or one left by a previous
    run) as a full-text index. The tree must not be used for anything
    else. *)

(** {1 Indexing} *)

val add_document : t -> Hfad_osd.Oid.t -> string -> unit
(** [add_document t oid text] indexes [text] under [oid]. Re-adding an
    already-indexed OID first removes the old postings (the index keeps
    no copy of the text, so the previous contents are recovered from the
    stored postings). *)

val remove_document : t -> Hfad_osd.Oid.t -> unit
(** Remove every posting of [oid]. No-op if the OID is not indexed. *)

val is_indexed : t -> Hfad_osd.Oid.t -> bool
val doc_count : t -> int

(** {1 Queries} *)

val document_frequency : t -> string -> int
(** Number of documents containing a term. *)

val postings : t -> string -> (Hfad_osd.Oid.t * int) list
(** [(oid, term_frequency)] pairs for a term, ascending OID order. *)

val mem_posting : t -> string -> Hfad_osd.Oid.t -> bool
(** Whether a document contains a term — one point probe, no postings
    scan (conjunction engines use this to test candidates against
    popular terms). *)

val search : t -> string list -> Hfad_osd.Oid.t list
(** Conjunctive query: OIDs containing {e all} the given terms, ascending
    order. "The result of such an operation is the conjunction of the
    results of an index lookup for each element in the vector" (§3.1.1).
    Terms are normalized through the tokenizer; an empty term list
    returns []. *)

val search_scored : t -> string list -> (Hfad_osd.Oid.t * float) list
(** {!search} ranked by TF-IDF (descending score). *)

val search_text : t -> string -> (Hfad_osd.Oid.t * float) list
(** Tokenize a free-text query, then {!search_scored}. *)

(** {1 Maintenance} *)

val verify : t -> unit
(** Structural check: document frequencies agree with postings, doc count
    agrees with document records, no orphan postings.
    @raise Failure on violation. *)
