lib/fulltext/tokenizer.ml: Buffer Char Hashtbl List Option String
