lib/fulltext/tokenizer.mli:
