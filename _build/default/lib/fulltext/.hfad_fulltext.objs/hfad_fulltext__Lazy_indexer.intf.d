lib/fulltext/lazy_indexer.mli: Fulltext Hfad_osd
