lib/fulltext/lazy_indexer.ml: Condition Fulltext Hfad_osd Mutex Queue Thread
