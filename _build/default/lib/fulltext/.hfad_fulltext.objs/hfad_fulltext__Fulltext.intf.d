lib/fulltext/fulltext.mli: Hfad_btree Hfad_osd
