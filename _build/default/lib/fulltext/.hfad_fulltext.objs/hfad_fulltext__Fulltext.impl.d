lib/fulltext/fulltext.ml: Bytes Fmt Format Hashtbl Hfad_btree Hfad_osd Hfad_util List Mutex Option String Tokenizer
