module Btree = Hfad_btree.Btree
module Oid = Hfad_osd.Oid
module Codec = Hfad_util.Codec

type t = { tree : Btree.t; mutex : Mutex.t }

let create tree = { tree; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  match f () with
  | result ->
      Mutex.unlock t.mutex;
      result
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

(* --- key construction --------------------------------------------------- *)

let postings_key term oid = "P" ^ term ^ "\000" ^ Oid.to_key oid
let postings_prefix term = "P" ^ term ^ "\000"
let forward_key oid term = "G" ^ Oid.to_key oid ^ term
let forward_prefix oid = "G" ^ Oid.to_key oid
let df_key term = "F" ^ term
let doc_key oid = "D" ^ Oid.to_key oid
let count_key = "N"

let encode_int v =
  let buf = Bytes.create 10 in
  Bytes.sub_string buf 0 (Codec.put_varint buf 0 v)

let decode_int s = fst (Codec.get_varint (Bytes.unsafe_of_string s) 0)

(* Postings key -> (term, oid): 'P' term '\000' oid8. *)
let split_postings_key k =
  let sep = String.index_from k 1 '\000' in
  (String.sub k 1 (sep - 1), Oid.of_key (String.sub k (sep + 1) 8))

(* --- counters ------------------------------------------------------------ *)

let bump t key delta =
  let current =
    match Btree.find t.tree key with Some v -> decode_int v | None -> 0
  in
  let next = current + delta in
  if next < 0 then Fmt.failwith "Fulltext: counter %S underflow" key
  else if next = 0 then ignore (Btree.remove t.tree key)
  else Btree.put t.tree ~key ~value:(encode_int next)

(* --- indexing -------------------------------------------------------------- *)

let doc_terms t oid =
  let prefix = forward_prefix oid in
  Btree.fold_prefix t.tree ~prefix ~init:[] (fun acc k _ ->
      String.sub k (String.length prefix)
        (String.length k - String.length prefix)
      :: acc)
  |> List.rev

let remove_unlocked t oid =
  match Btree.find t.tree (doc_key oid) with
  | None -> ()
  | Some _ ->
      List.iter
        (fun term ->
          ignore (Btree.remove t.tree (postings_key term oid));
          ignore (Btree.remove t.tree (forward_key oid term));
          bump t (df_key term) (-1))
        (doc_terms t oid);
      ignore (Btree.remove t.tree (doc_key oid));
      bump t count_key (-1)

let add_document t oid text =
  locked t (fun () ->
      remove_unlocked t oid;
      let terms = Tokenizer.term_frequencies text in
      let total_tokens = List.fold_left (fun acc (_, n) -> acc + n) 0 terms in
      List.iter
        (fun (term, tf) ->
          Btree.put t.tree ~key:(postings_key term oid) ~value:(encode_int tf);
          Btree.put t.tree ~key:(forward_key oid term) ~value:"";
          bump t (df_key term) 1)
        terms;
      Btree.put t.tree ~key:(doc_key oid) ~value:(encode_int total_tokens);
      bump t count_key 1)

let remove_document t oid = locked t (fun () -> remove_unlocked t oid)

let is_indexed t oid = locked t (fun () -> Btree.mem t.tree (doc_key oid))

let doc_count t =
  locked t (fun () ->
      match Btree.find t.tree count_key with
      | Some v -> decode_int v
      | None -> 0)

(* --- queries ------------------------------------------------------------------ *)

let document_frequency_unlocked t term =
  match Btree.find t.tree (df_key term) with
  | Some v -> decode_int v
  | None -> 0

let document_frequency t term =
  locked t (fun () -> document_frequency_unlocked t term)

let postings_unlocked t term =
  Btree.fold_prefix t.tree ~prefix:(postings_prefix term) ~init:[]
    (fun acc k v ->
      let _, oid = split_postings_key k in
      (oid, decode_int v) :: acc)
  |> List.rev

let postings t term = locked t (fun () -> postings_unlocked t term)

let mem_posting t term oid =
  locked t (fun () ->
      match Tokenizer.tokens term with
      | [ term ] -> Btree.mem t.tree (postings_key term oid)
      | _ -> false)

let normalize_terms terms =
  terms
  |> List.concat_map Tokenizer.tokens
  |> List.sort_uniq String.compare

(* Intersect ascending (oid, tf) lists, summing a per-document weight. *)
let intersect lists =
  match lists with
  | [] -> []
  | first :: rest ->
      List.fold_left
        (fun acc l ->
          let rec go xs ys =
            match (xs, ys) with
            | [], _ | _, [] -> []
            | (ox, wx) :: xs', (oy, wy) :: ys' ->
                let c = Oid.compare ox oy in
                if c = 0 then (ox, wx +. wy) :: go xs' ys'
                else if c < 0 then go xs' ys
                else go xs ys'
          in
          go acc l)
        first rest

let search_scored t terms =
  locked t (fun () ->
      let terms = normalize_terms terms in
      if terms = [] then []
      else begin
        let n_docs =
          match Btree.find t.tree count_key with
          | Some v -> decode_int v
          | None -> 0
        in
        (* Cheapest-term-first intersection: order by document frequency. *)
        let by_df =
          terms
          |> List.map (fun term -> (document_frequency_unlocked t term, term))
          |> List.sort compare
        in
        match by_df with
        | (0, _) :: _ -> []  (* some term matches nothing: empty conjunction *)
        | ordered ->
            let idf df =
              log (float_of_int (1 + n_docs) /. float_of_int (1 + df)) +. 1.
            in
            let weighted =
              List.map
                (fun (df, term) ->
                  List.map
                    (fun (oid, tf) -> (oid, float_of_int tf *. idf df))
                    (postings_unlocked t term))
                ordered
            in
            intersect weighted
            |> List.sort (fun (oa, sa) (ob, sb) ->
                   match compare sb sa with 0 -> Oid.compare oa ob | c -> c)
      end)

let search t terms =
  search_scored t terms |> List.map fst |> List.sort Oid.compare

let search_text t query = search_scored t [ query ]

(* --- verification ---------------------------------------------------------------- *)

let verify t =
  locked t (fun () ->
      let fail fmt = Format.kasprintf failwith fmt in
      Btree.verify t.tree;
      (* Collect ground truth from the postings. *)
      let df = Hashtbl.create 64 in
      let docs = Hashtbl.create 64 in
      Btree.fold_prefix t.tree ~prefix:"P" ~init:() (fun () k _ ->
          let term, oid = split_postings_key k in
          Hashtbl.replace df term
            (1 + Option.value ~default:0 (Hashtbl.find_opt df term));
          Hashtbl.replace docs (Oid.to_int64 oid) ());
      (* Document frequencies must match. *)
      Btree.fold_prefix t.tree ~prefix:"F" ~init:() (fun () k v ->
          let term = String.sub k 1 (String.length k - 1) in
          let recorded = decode_int v in
          let actual = Option.value ~default:0 (Hashtbl.find_opt df term) in
          if recorded <> actual then
            fail "df(%s) = %d but %d postings exist" term recorded actual;
          Hashtbl.remove df term);
      if Hashtbl.length df <> 0 then fail "postings exist without df record";
      (* Doc records must match the postings' documents. *)
      let recorded_docs =
        Btree.fold_prefix t.tree ~prefix:"D" ~init:0 (fun acc k _ ->
            let oid = Oid.of_key (String.sub k 1 8) in
            (* A document of only stopwords has no postings; tolerate. *)
            ignore oid;
            acc + 1)
      in
      Hashtbl.iter
        (fun oid () ->
          if not (Btree.mem t.tree (doc_key (Oid.of_int64 oid))) then
            fail "orphan postings for oid %Ld" oid)
        docs;
      let n =
        match Btree.find t.tree count_key with
        | Some v -> decode_int v
        | None -> 0
      in
      if n <> recorded_docs then
        fail "doc count %d but %d document records" n recorded_docs;
      (* Forward index agrees with postings. *)
      Btree.fold_prefix t.tree ~prefix:"G" ~init:() (fun () k _ ->
          let oid = Oid.of_key (String.sub k 1 8) in
          let term = String.sub k 9 (String.length k - 9) in
          if not (Btree.mem t.tree (postings_key term oid)) then
            fail "forward entry (%a, %s) without posting" Oid.pp oid term))
