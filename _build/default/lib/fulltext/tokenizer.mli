(** Text analysis for the full-text index.

    The standard search-engine pipeline: lowercase, split on
    non-alphanumerics, drop stopwords and degenerate tokens. Terms are
    what the FULLTEXT tag's values are matched against (Table 1). *)

val default_stopwords : string list
(** A small English stopword list ("the", "and", ...). *)

val min_token_len : int
(** Tokens shorter than this are dropped (2). *)

val max_token_len : int
(** Tokens longer than this are truncated (64) so every term fits in an
    index key. *)

val tokens : ?stopwords:string list -> string -> string list
(** All index terms of a text, in order, duplicates preserved. *)

val term_frequencies : ?stopwords:string list -> string -> (string * int) list
(** Distinct terms with occurrence counts, sorted by term. *)

val is_term : string -> bool
(** Whether a string is a well-formed term (what {!tokens} emits):
    non-empty lowercase alphanumeric, within length bounds. *)
