module Oid = Hfad_osd.Oid

type work = Index of Oid.t * string | Unindex of Oid.t

type t = {
  index : Fulltext.t;
  queue : work Queue.t;
  mutex : Mutex.t;
  wake : Condition.t;
  mutable worker : Thread.t option;
  mutable stop_requested : bool;
  mutable processed : int;
}

let create index =
  {
    index;
    queue = Queue.create ();
    mutex = Mutex.create ();
    wake = Condition.create ();
    worker = None;
    stop_requested = false;
    processed = 0;
  }

let submit t work =
  Mutex.lock t.mutex;
  Queue.push work t.queue;
  Condition.signal t.wake;
  Mutex.unlock t.mutex

let submit_add t oid text = submit t (Index (oid, text))
let submit_remove t oid = submit t (Unindex oid)

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let apply t work =
  (match work with
  | Index (oid, text) -> Fulltext.add_document t.index oid text
  | Unindex oid -> Fulltext.remove_document t.index oid);
  t.processed <- t.processed + 1

(* Pop one item under the lock; the (possibly slow) index update happens
   outside it so submitters never wait on indexing. *)
let pop t =
  Mutex.lock t.mutex;
  let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  item

let drain ?max_items t =
  let limit = match max_items with Some n -> n | None -> pending t in
  let rec loop done_ =
    if done_ >= limit then done_
    else
      match pop t with
      | None -> done_
      | Some work ->
          apply t work;
          loop (done_ + 1)
  in
  loop 0

let rec drain_all t = if drain t > 0 then drain_all t

let worker_loop t =
  let rec run () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop_requested do
      Condition.wait t.wake t.mutex
    done;
    let item =
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
    in
    Mutex.unlock t.mutex;
    match item with
    | Some work ->
        apply t work;
        run ()
    | None -> ()  (* stop requested and queue empty *)
  in
  run ()

let start_background t =
  match t.worker with
  | Some _ -> ()
  | None ->
      t.stop_requested <- false;
      t.worker <- Some (Thread.create worker_loop t)

let stop_background t =
  match t.worker with
  | None -> ()
  | Some thread ->
      Mutex.lock t.mutex;
      t.stop_requested <- true;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      Thread.join thread;
      t.worker <- None;
      t.stop_requested <- false

let processed t = t.processed
