let default_stopwords =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "but"; "by"; "for"; "if";
    "in"; "into"; "is"; "it"; "no"; "not"; "of"; "on"; "or"; "such"; "that";
    "the"; "their"; "then"; "there"; "these"; "they"; "this"; "to"; "was";
    "will"; "with";
  ]

let min_token_len = 2
let max_token_len = 64

let is_token_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let tokens ?(stopwords = default_stopwords) text =
  let stop = Hashtbl.create (List.length stopwords) in
  List.iter (fun w -> Hashtbl.replace stop w ()) stopwords;
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush_token () =
    if Buffer.length buf >= min_token_len then begin
      let tok = Buffer.contents buf in
      let tok =
        if String.length tok > max_token_len then String.sub tok 0 max_token_len
        else tok
      in
      if not (Hashtbl.mem stop tok) then out := tok :: !out
    end;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      let c = lower c in
      if is_token_char c then Buffer.add_char buf c else flush_token ())
    text;
  flush_token ();
  List.rev !out

let term_frequencies ?stopwords text =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun tok ->
      Hashtbl.replace counts tok
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts tok)))
    (tokens ?stopwords text);
  Hashtbl.fold (fun term count acc -> (term, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_term s =
  String.length s >= min_token_len
  && String.length s <= max_token_len
  && String.for_all is_token_char s
