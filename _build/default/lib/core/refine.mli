(** Iterative search refinement — §4's "current directory" question.

    "Could/should we employ ideas from the semantic filesystem work to
    extend the notion of a 'current directory' to be an iterative
    refinement of a search?" We answer yes and build it: a session is an
    immutable stack of tag/value constraints; each {!narrow} conjoins one
    more pair (like [cd] descending a level), {!widen} pops one (like
    [cd ..]), {!ls} shows the objects currently "in" the search
    directory. Results are computed eagerly at each step so [ls] is
    free, and sessions share structure (narrowing returns a new session,
    the old one remains valid). *)

type t

val start : Fs.t -> t
(** The root session: no constraints. [ls] on it lists every object. *)

val narrow : t -> Hfad_index.Tag.t * string -> t
(** Add one constraint ("cd deeper"). *)

val widen : t -> t
(** Drop the most recent constraint ("cd .."). At the root, identity. *)

val constraints : t -> (Hfad_index.Tag.t * string) list
(** Active constraints, outermost first. *)

val ls : t -> Hfad_osd.Oid.t list
(** Objects matching every active constraint. *)

val count : t -> int

val pwd : t -> string
(** Path-like rendering of the constraint stack, e.g.
    ["/USER=margo/UDEF=vacation"] (["/"] for the root session). *)
