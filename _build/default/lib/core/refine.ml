module Tag = Hfad_index.Tag
module Osd = Hfad_osd.Osd

type t = {
  fs : Fs.t;
  stack : (Tag.t * string) list;  (* innermost first *)
  results : Hfad_osd.Oid.t list;
}

let start fs =
  { fs; stack = []; results = Osd.list_objects (Fs.osd fs) }

let narrow t pair =
  let results =
    match t.stack with
    | [] ->
        (* First constraint: the index answers directly. *)
        Fs.lookup t.fs [ pair ]
    | _ ->
        (* Conjoin with the cached result set. *)
        let matching = Fs.lookup t.fs [ pair ] in
        List.filter (fun oid -> List.exists (Hfad_osd.Oid.equal oid) matching)
          t.results
  in
  { t with stack = pair :: t.stack; results }

let widen t =
  match t.stack with
  | [] -> t
  | _ :: outer ->
      let results =
        match outer with
        | [] -> Osd.list_objects (Fs.osd t.fs)
        | pairs -> Fs.lookup t.fs pairs
      in
      { t with stack = outer; results }

let constraints t = List.rev t.stack
let ls t = t.results
let count t = List.length t.results

let pwd t =
  match constraints t with
  | [] -> "/"
  | pairs ->
      String.concat ""
        (List.map
           (fun (tag, value) -> Printf.sprintf "/%s=%s" (Tag.to_string tag) value)
           pairs)
