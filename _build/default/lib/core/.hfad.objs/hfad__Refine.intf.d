lib/core/refine.mli: Fs Hfad_index Hfad_osd
