lib/core/refine.ml: Fs Hfad_index Hfad_osd List Printf String
