lib/core/fs.ml: Hfad_fulltext Hfad_index Hfad_osd List
