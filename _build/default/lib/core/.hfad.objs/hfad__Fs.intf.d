lib/core/fs.mli: Hfad_blockdev Hfad_index Hfad_osd
