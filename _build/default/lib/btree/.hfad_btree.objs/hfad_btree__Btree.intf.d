lib/btree/btree.mli: Hfad_pager
