lib/btree/node.ml: Array Bytes Fmt Hfad_util Printf String
