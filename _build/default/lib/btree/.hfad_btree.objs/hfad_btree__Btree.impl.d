lib/btree/btree.ml: Array Format Hfad_metrics Hfad_pager Hfad_util List Node Option String
