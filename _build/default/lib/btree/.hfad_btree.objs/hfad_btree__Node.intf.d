lib/btree/node.mli: Bytes
