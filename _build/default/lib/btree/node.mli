(** B+tree node representation and page (de)serialization.

    Nodes live on pager pages. The in-memory form is decoded on access
    and re-encoded on update; pages are the unit of I/O accounting, so
    this costs CPU but keeps the structural metrics exact and the split
    and merge logic easy to audit.

    Page layouts (all integers big-endian):

    Leaf:     [u8 tag=1] [u16 nkeys] [u32 next_leaf+1, 0 = none]
              then nkeys × (varint klen, key, varint vlen, value)
    Internal: [u8 tag=2] [u16 nkeys] [u32 child0]
              then nkeys × (varint klen, key, u32 child)

    An internal node with keys [k0 < k1 < ... < k(n-1)] and children
    [c0 .. cn] routes a key [k] to [ci] where [i] is the number of
    separators [<= k]; i.e. subtree [ci] holds keys in [\[k(i-1), ki)]. *)

type t =
  | Leaf of { mutable entries : (string * string) array; mutable next : int option }
  | Internal of { mutable keys : string array; mutable children : int array }

val empty_leaf : unit -> t

val encoded_size : t -> int
(** Exact size in bytes of the encoded node. *)

val leaf_entry_size : string -> string -> int
(** Encoded size contribution of one leaf entry. *)

val internal_entry_size : string -> int
(** Encoded size contribution of one separator + child pointer. *)

val header_size : int
(** Fixed bytes before the entries of either node kind. *)

val encode : t -> Bytes.t -> unit
(** [encode node page] serializes into [page].
    @raise Invalid_argument if the node does not fit. *)

val decode : Bytes.t -> t
(** @raise Failure on a corrupt or unknown page tag. *)

val find_child : string array -> string -> int
(** [find_child keys k] is the child index routing [k]: the number of
    separators [<= k] (binary search). *)

val find_entry : (string * string) array -> string -> int option
(** Exact-match binary search in a sorted leaf-entry array. *)

val lower_bound : (string * string) array -> string -> int
(** Index of the first entry with key [>= k] ([Array.length] if none). *)
