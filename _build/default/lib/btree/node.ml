module Codec = Hfad_util.Codec

type t =
  | Leaf of { mutable entries : (string * string) array; mutable next : int option }
  | Internal of { mutable keys : string array; mutable children : int array }

let tag_leaf = 1
let tag_internal = 2
let header_size = 1 + 2 + 4

let empty_leaf () = Leaf { entries = [||]; next = None }

let leaf_entry_size k v = Codec.string_size k + Codec.string_size v
let internal_entry_size k = Codec.string_size k + 4

let encoded_size = function
  | Leaf { entries; _ } ->
      Array.fold_left
        (fun acc (k, v) -> acc + leaf_entry_size k v)
        header_size entries
  | Internal { keys; _ } ->
      Array.fold_left
        (fun acc k -> acc + internal_entry_size k)
        header_size keys

let encode node page =
  let size = encoded_size node in
  if size > Bytes.length page then
    invalid_arg
      (Printf.sprintf "Node.encode: node of %d bytes exceeds %d-byte page"
         size (Bytes.length page));
  (match node with
  | Leaf { entries; next } ->
      Codec.put_u8 page 0 tag_leaf;
      Codec.put_u16 page 1 (Array.length entries);
      Codec.put_u32 page 3 (match next with Some p -> p + 1 | None -> 0);
      let off = ref header_size in
      Array.iter
        (fun (k, v) ->
          off := Codec.put_string page !off k;
          off := Codec.put_string page !off v)
        entries
  | Internal { keys; children } ->
      assert (Array.length children = Array.length keys + 1);
      Codec.put_u8 page 0 tag_internal;
      Codec.put_u16 page 1 (Array.length keys);
      Codec.put_u32 page 3 children.(0);
      let off = ref header_size in
      Array.iteri
        (fun i k ->
          off := Codec.put_string page !off k;
          Codec.put_u32 page !off children.(i + 1);
          off := !off + 4)
        keys);
  (* Zero the tail so identical logical nodes encode to identical pages. *)
  if size < Bytes.length page then
    Bytes.fill page size (Bytes.length page - size) '\000'

let decode page =
  let tag = Codec.get_u8 page 0 in
  let nkeys = Codec.get_u16 page 1 in
  if tag = tag_leaf then begin
    let next =
      match Codec.get_u32 page 3 with 0 -> None | p -> Some (p - 1)
    in
    let off = ref header_size in
    let entries =
      Array.init nkeys (fun _ ->
          let k, o = Codec.get_string page !off in
          let v, o = Codec.get_string page o in
          off := o;
          (k, v))
    in
    Leaf { entries; next }
  end
  else if tag = tag_internal then begin
    let child0 = Codec.get_u32 page 3 in
    let off = ref header_size in
    let pairs =
      Array.init nkeys (fun _ ->
          let k, o = Codec.get_string page !off in
          let c = Codec.get_u32 page o in
          off := o + 4;
          (k, c))
    in
    let keys = Array.map fst pairs in
    let children =
      Array.init (nkeys + 1) (fun i ->
          if i = 0 then child0 else snd pairs.(i - 1))
    in
    Internal { keys; children }
  end
  else Fmt.failwith "Node.decode: unknown page tag %d" tag

let find_child keys k =
  (* Number of separators <= k. *)
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare keys.(mid) k <= 0 then loop (mid + 1) hi
      else loop lo mid
  in
  loop 0 (Array.length keys)

let lower_bound entries k =
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (fst entries.(mid)) k < 0 then loop (mid + 1) hi
      else loop lo mid
  in
  loop 0 (Array.length entries)

let find_entry entries k =
  let i = lower_bound entries k in
  if i < Array.length entries && fst entries.(i) = k then Some i else None
