module Codec = Hfad_util.Codec

type kind = Regular | Directory | Symlink

type t = {
  size : int;
  kind : kind;
  owner : string;
  mode : int;
  atime : int64;
  mtime : int64;
  ctime : int64;
}

let logical = ref 0L

let logical_clock () =
  logical := Int64.add !logical 1L;
  !logical

let clock = ref logical_clock
let now () = !clock ()
let set_clock f = clock := f

let reset_logical_clock () =
  logical := 0L;
  clock := logical_clock

let make ?(kind = Regular) ?(owner = "root") ?(mode = 0o644) () =
  let t = now () in
  { size = 0; kind; owner; mode; atime = t; mtime = t; ctime = t }

let with_size t size = { t with size; mtime = now () }
let touch_atime t = { t with atime = now () }
let touch_mtime t = { t with mtime = now () }

let kind_to_int = function Regular -> 0 | Directory -> 1 | Symlink -> 2

let kind_of_int = function
  | 0 -> Regular
  | 1 -> Directory
  | 2 -> Symlink
  | n -> Fmt.failwith "Meta.decode: unknown kind %d" n

let encode t =
  let size =
    Codec.varint_size t.size + 1
    + Codec.string_size t.owner
    + Codec.varint_size t.mode
    + 24
  in
  let buf = Bytes.create size in
  let off = Codec.put_varint buf 0 t.size in
  Codec.put_u8 buf off (kind_to_int t.kind);
  let off = off + 1 in
  let off = Codec.put_string buf off t.owner in
  let off = Codec.put_varint buf off t.mode in
  Codec.put_i64 buf off t.atime;
  Codec.put_i64 buf (off + 8) t.mtime;
  Codec.put_i64 buf (off + 16) t.ctime;
  Bytes.sub_string buf 0 (off + 24)

let decode s =
  let buf = Bytes.unsafe_of_string s in
  try
    let size, off = Codec.get_varint buf 0 in
    let kind = kind_of_int (Codec.get_u8 buf off) in
    let owner, off = Codec.get_string buf (off + 1) in
    let mode, off = Codec.get_varint buf off in
    let atime = Codec.get_i64 buf off in
    let mtime = Codec.get_i64 buf (off + 8) in
    let ctime = Codec.get_i64 buf (off + 16) in
    { size; kind; owner; mode; atime; mtime; ctime }
  with Invalid_argument _ -> failwith "Meta.decode: truncated metadata"

let equal a b = a = b

let pp fmt t =
  let kind =
    match t.kind with
    | Regular -> "regular"
    | Directory -> "directory"
    | Symlink -> "symlink"
  in
  Format.fprintf fmt "{size=%d kind=%s owner=%s mode=%o a=%Ld m=%Ld c=%Ld}"
    t.size kind t.owner t.mode t.atime t.mtime t.ctime
