lib/osd/meta.mli: Format
