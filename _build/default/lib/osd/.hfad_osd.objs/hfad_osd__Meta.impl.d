lib/osd/meta.ml: Bytes Fmt Format Hfad_util Int64
