lib/osd/oid.ml: Format Hfad_util Int64
