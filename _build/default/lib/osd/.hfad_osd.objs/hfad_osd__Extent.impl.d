lib/osd/extent.ml: Bytes Format Hfad_util
