lib/osd/osd.mli: Hfad_alloc Hfad_blockdev Hfad_btree Hfad_pager Meta Oid
