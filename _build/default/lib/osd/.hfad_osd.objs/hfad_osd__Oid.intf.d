lib/osd/oid.mli: Format
