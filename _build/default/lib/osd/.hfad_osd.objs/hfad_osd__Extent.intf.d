lib/osd/extent.mli: Format
