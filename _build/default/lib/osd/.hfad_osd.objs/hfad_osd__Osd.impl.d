lib/osd/osd.ml: Bytes Extent Fmt Format Hashtbl Hfad_alloc Hfad_blockdev Hfad_btree Hfad_journal Hfad_metrics Hfad_pager Hfad_util Int64 List Meta Oid Option String
