module Codec = Hfad_util.Codec

type t = { alloc_block : int; alloc_blocks : int; data_off : int; len : int }

let make ~alloc_block ~alloc_blocks ~data_off ~len =
  if alloc_block < 0 || alloc_blocks <= 0 || data_off < 0 || len <= 0 then
    invalid_arg "Extent.make: negative or empty extent";
  { alloc_block; alloc_blocks; data_off; len }

let byte_addr ~block_size t = (t.alloc_block * block_size) + t.data_off

let encode t =
  let buf = Bytes.create 40 in
  let off = Codec.put_varint buf 0 t.alloc_block in
  let off = Codec.put_varint buf off t.alloc_blocks in
  let off = Codec.put_varint buf off t.data_off in
  let off = Codec.put_varint buf off t.len in
  Bytes.sub_string buf 0 off

let decode s =
  let buf = Bytes.unsafe_of_string s in
  try
    let alloc_block, off = Codec.get_varint buf 0 in
    let alloc_blocks, off = Codec.get_varint buf off in
    let data_off, off = Codec.get_varint buf off in
    let len, _ = Codec.get_varint buf off in
    make ~alloc_block ~alloc_blocks ~data_off ~len
  with Invalid_argument _ -> failwith "Extent.decode: truncated extent"

let pp fmt t =
  Format.fprintf fmt "extent{blk=%d×%d +%d len=%d}" t.alloc_block
    t.alloc_blocks t.data_off t.len
