(** Extent descriptors — values of an object's offset-keyed B-tree.

    "We represent objects in the OSD as ... btree databases whose keys are
    file offsets where extents begin and whose data items are the disk
    addresses and lengths corresponding to those offsets" (§3.4).

    An extent references one buddy allocation. [data_off] lets us trim an
    extent's head (during [remove]) without copying: the useful bytes are
    the [len] bytes starting [data_off] bytes into the allocation. An
    allocation is referenced by exactly one extent, so freeing the extent
    frees [alloc_block]. *)

type t = {
  alloc_block : int;   (** first device block of the backing allocation *)
  alloc_blocks : int;  (** blocks in the backing allocation (power of two) *)
  data_off : int;      (** byte offset of live data within the allocation *)
  len : int;           (** live bytes *)
}

val make : alloc_block:int -> alloc_blocks:int -> data_off:int -> len:int -> t
(** @raise Invalid_argument on negative fields, [len = 0], or data that
    overruns the allocation. *)

val byte_addr : block_size:int -> t -> int
(** Absolute device byte address of the extent's first live byte. *)

val encode : t -> string
val decode : string -> t
(** @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
