(** Object identifiers.

    "Only the identifier for the data in the OSD layer must be unique"
    (§3.1.1). OIDs are dense 64-bit integers handed out by the OSD;
    they are the values every index store maps search terms to, and the
    key of the ID fast-path tag (Table 1). *)

type t = private int64

val of_int64 : int64 -> t
(** @raise Invalid_argument on negative values. *)

val to_int64 : t -> int64
val first : t
val next : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_key : t -> string
(** Order-preserving 8-byte encoding, for use as a B-tree key. *)

val of_key : string -> t
(** Inverse of {!to_key}. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, also accepted by {!of_string}. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
