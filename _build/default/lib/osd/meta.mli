(** Per-object metadata.

    §3.3: "Each such container (object) has associated meta-data
    identifying the object's security attributes, its last access and
    modified times, and its size." Stored under the NULL key of the
    object's own B-tree, exactly as §3.4 describes.

    Timestamps come from a logical clock by default so that runs are
    deterministic; callers may install a wall clock with {!set_clock}. *)

type kind = Regular | Directory | Symlink
(** [Regular] is the native hFAD object. The other kinds exist only for
    the POSIX veneer's bookkeeping; the OSD itself is agnostic. *)

type t = {
  size : int;         (** object length in bytes *)
  kind : kind;
  owner : string;     (** security attribute: owning principal *)
  mode : int;         (** security attribute: permission bits *)
  atime : int64;
  mtime : int64;
  ctime : int64;
}

val make : ?kind:kind -> ?owner:string -> ?mode:int -> unit -> t
(** Fresh metadata: size 0, all times = now. Defaults: [Regular],
    owner ["root"], mode [0o644]. *)

val with_size : t -> int -> t
(** Update size and mtime. *)

val touch_atime : t -> t
val touch_mtime : t -> t

val encode : t -> string
val decode : string -> t
(** @raise Failure on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Clock} *)

val now : unit -> int64
(** Current time under the installed clock. The default clock is logical:
    a counter that advances by one per call, so tests and experiments are
    reproducible. *)

val set_clock : (unit -> int64) -> unit
val reset_logical_clock : unit -> unit
(** Restore the default logical clock, restarting it from zero. *)
