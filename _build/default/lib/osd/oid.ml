module Codec = Hfad_util.Codec

type t = int64

let of_int64 v =
  if Int64.compare v 0L < 0 then invalid_arg "Oid.of_int64: negative";
  v

let to_int64 t = t
let first = 1L
let next t = Int64.add t 1L
let equal = Int64.equal
let compare = Int64.compare
let hash t = Int64.to_int t land max_int
let to_key t = Codec.encode_i64_key t

let of_key s =
  let v = Codec.decode_i64_key s in
  of_int64 v

let to_string = Int64.to_string

let of_string s =
  match Int64.of_string_opt s with
  | Some v when Int64.compare v 0L >= 0 -> Some v
  | Some _ | None -> None

let pp fmt t = Format.fprintf fmt "oid:%Ld" t
