(** Operation traces: generate a mixed stream of naming and access
    operations against a loaded corpus, then replay it on either system.

    The generator models a desktop session over a photo library: mostly
    attribute and content searches with occasional path opens and edits,
    popularity Zipf-skewed (the same few people/places get searched over
    and over). The same trace replays against hFAD and against the
    hierarchical baseline + desktop search, so macro comparisons run the
    identical operation stream. *)

type op =
  | Lookup_attr of string        (** find by annotation (person/place) *)
  | Search_content of string     (** full-text term *)
  | Open_path of string          (** resolve a known pathname, read 4 KiB *)
  | Edit of string               (** overwrite the first bytes of a path *)

type t = op list

val pp_op : Format.formatter -> op -> unit

val generate :
  Hfad_util.Rng.t -> photos:Corpus.photo list -> ops:int -> t
(** A trace over the given corpus: 45% attribute lookups, 30% content
    searches, 20% opens, 5% edits. *)

type outcome = {
  lookups : int;
  search_hits : int;      (** total results returned by searches/lookups *)
  bytes_read : int;
  edits : int;
}

val replay_hfad : Hfad_posix.Posix_fs.t -> t -> outcome
(** Replay on hFAD: attribute lookups via the UDEF index, content via
    the full-text index, opens via the POSIX veneer. *)

val replay_hierfs :
  Hfad_hierfs.Hierfs.t -> Hfad_hierfs.Desktop_search.t -> t -> outcome
(** Replay on the baseline: attribute lookups have no index — they run
    as desktop-search content queries (captions mention the attributes),
    each hit resolved through the namespace. *)
