let common =
  [|
    "time"; "year"; "people"; "way"; "day"; "man"; "thing"; "woman"; "life";
    "child"; "world"; "school"; "state"; "family"; "student"; "group";
    "country"; "problem"; "hand"; "part"; "place"; "case"; "week"; "company";
    "system"; "program"; "question"; "work"; "government"; "number"; "night";
    "point"; "home"; "water"; "room"; "mother"; "area"; "money"; "story";
    "fact"; "month"; "lot"; "right"; "study"; "book"; "eye"; "job"; "word";
    "business"; "issue"; "side"; "kind"; "head"; "house"; "service"; "friend";
    "father"; "power"; "hour"; "game"; "line"; "end"; "member"; "law"; "car";
    "city"; "community"; "name"; "president"; "team"; "minute"; "idea"; "kid";
    "body"; "information"; "back"; "parent"; "face"; "others"; "level";
    "office"; "door"; "health"; "person"; "art"; "war"; "history"; "party";
    "result"; "change"; "morning"; "reason"; "research"; "girl"; "guy";
    "moment"; "air"; "teacher"; "force"; "education"; "foot"; "boy"; "age";
    "policy"; "process"; "music"; "market"; "sense"; "nation"; "plan";
    "college"; "interest"; "death"; "experience"; "effect"; "use"; "class";
    "control"; "care"; "field"; "development"; "role"; "effort"; "rate";
    "heart"; "drug"; "show"; "leader"; "light"; "voice"; "wife"; "police";
    "mind"; "price"; "report"; "decision"; "son"; "view"; "relationship";
    "town"; "road"; "arm"; "difference"; "value"; "building"; "action";
    "model"; "season"; "society"; "tax"; "director"; "position"; "player";
    "record"; "paper"; "space"; "ground"; "form"; "event"; "official";
    "matter"; "center"; "couple"; "site"; "project"; "activity"; "star";
    "table"; "court"; "american"; "oil"; "situation"; "cost"; "industry";
    "figure"; "street"; "image"; "phone"; "data"; "picture"; "practice";
    "piece"; "land"; "product"; "doctor"; "wall"; "patient"; "worker";
    "news"; "test"; "movie"; "north"; "love"; "support"; "technology";
  |]

let people =
  [|
    "margo"; "nick"; "alice"; "bob"; "carol"; "dave"; "erin"; "frank";
    "grace"; "heidi"; "ivan"; "judy"; "karl"; "laura"; "mallory"; "niaj";
    "olivia"; "peggy"; "quentin"; "rupert"; "sybil"; "trent"; "ursula";
    "victor"; "wendy"; "xavier"; "yolanda"; "zach";
  |]

let places =
  [|
    "hawaii"; "boston"; "paris"; "tokyo"; "yosemite"; "berlin"; "sydney";
    "cairo"; "lima"; "oslo"; "kyoto"; "reykjavik"; "vienna"; "marrakesh";
    "banff"; "queenstown";
  |]

let cameras =
  [|
    "nikon-d90"; "canon-5d"; "iphone-3gs"; "leica-m8"; "pentax-k7";
    "olympus-ep1"; "sony-a900";
  |]

let topics =
  [|
    "budget"; "meeting"; "deadline"; "proposal"; "review"; "vacation";
    "invoice"; "schedule"; "report"; "contract"; "party"; "taxes";
    "insurance"; "recipe"; "travel"; "conference"; "thesis"; "grant";
  |]

let extensions = [| "ml"; "mli"; "c"; "h"; "py"; "sh"; "txt"; "md" |]

let identifiers =
  [|
    "buffer"; "alloc"; "index"; "lookup"; "insert"; "remove"; "search";
    "hash"; "table"; "node"; "tree"; "page"; "cache"; "lock"; "mutex";
    "thread"; "queue"; "stack"; "heap"; "list"; "array"; "string"; "bytes";
    "offset"; "length"; "count"; "total"; "result"; "error"; "status";
    "config"; "option"; "value"; "key"; "entry"; "record"; "field"; "flag";
  |]
