(** Synthetic corpora for the workloads the paper motivates (§1):
    "users may have many gigabytes worth of photo, video, and audio
    libraries on a single pc" — photo libraries found by who/when/where,
    email found by content, source trees whose directory layout decays
    (MacCormack, cited in §2.2).

    All generation is deterministic from the supplied {!Hfad_util.Rng},
    with Zipf-skewed attribute popularity (some people and places appear
    in many photos, some senders dominate a mailbox), matching the skew
    real media libraries show. *)

type photo = {
  photo_path : string;       (** canonical POSIX-style path *)
  people : string list;      (** who is in the picture (1-3 names) *)
  place : string;
  year : int;
  camera : string;
  caption : string;          (** searchable description text *)
  pixels : string;           (** simulated image payload (for the image index) *)
}

type email = {
  email_path : string;
  sender : string;
  recipient : string;
  subject : string;
  body : string;
  email_year : int;
}

type source_file = {
  source_path : string;
  code : string;
}

val photos : ?pixel_bytes:int -> Hfad_util.Rng.t -> count:int -> photo list
(** A photo library of [count] pictures spread over per-year/place
    directories. [pixel_bytes] (default 512) sizes the simulated image
    payload. Paths are unique. *)

val emails : Hfad_util.Rng.t -> count:int -> email list
(** A mail archive under /home/<user>/mail/<year>/. Zipf-skewed senders
    and topic vocabulary. Paths are unique. *)

val source_tree : Hfad_util.Rng.t -> files:int -> source_file list
(** A source tree under /src with nested module directories and
    identifier-dense file contents. Paths are unique. *)
