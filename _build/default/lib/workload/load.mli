(** Load corpora into both systems, identically.

    For hFAD, attributes become tags (Table 1's manual/application rows):
    photo subjects and places are [UDEF] annotations, the owner is
    [USER], the importing application / camera go to [APP] and a custom
    tag, captions and bodies feed the full-text index, pixels feed the
    image index. The POSIX veneer also gets the canonical path, so both
    naming worlds coexist.

    For the hierarchical baseline the {e only} name is the path — which
    is the paper's whole point — and content search goes through the
    external {!Hfad_hierfs.Desktop_search} index. *)

val photo_into_hfad :
  Hfad_posix.Posix_fs.t -> Corpus.photo -> Hfad_osd.Oid.t
(** Create the file (path + content = caption), tag it, and feed the
    image index with the pixel hash. *)

val photos_into_hfad :
  Hfad_posix.Posix_fs.t -> Corpus.photo list -> Hfad_osd.Oid.t list

val emails_into_hfad :
  Hfad_posix.Posix_fs.t -> Corpus.email list -> Hfad_osd.Oid.t list
(** Sender/recipient become [USER] tags, the subject topic a [UDEF] tag,
    body text is content. *)

val source_into_hfad :
  Hfad_posix.Posix_fs.t -> Corpus.source_file list -> Hfad_osd.Oid.t list

val photos_into_hierfs : Hfad_hierfs.Hierfs.t -> Corpus.photo list -> unit
(** Same files (caption as content) under the same paths; attributes
    exist only as path components, as in a real hierarchical library. *)

val emails_into_hierfs : Hfad_hierfs.Hierfs.t -> Corpus.email list -> unit
val source_into_hierfs : Hfad_hierfs.Hierfs.t -> Corpus.source_file list -> unit
