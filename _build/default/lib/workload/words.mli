(** Static vocabulary for deterministic corpus generation. *)

val common : string array
(** ~200 common English words for body text. *)

val people : string array
(** First names, for photo subjects, email senders, owners. *)

val places : string array
(** Locations for the photo workload. *)

val cameras : string array
(** Camera model strings. *)

val topics : string array
(** Email / document subject nouns. *)

val extensions : string array
(** Source-file extensions. *)

val identifiers : string array
(** Code-like identifiers for the source-tree workload. *)
