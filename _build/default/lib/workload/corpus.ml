module Rng = Hfad_util.Rng
module Zipf = Hfad_util.Zipf

type photo = {
  photo_path : string;
  people : string list;
  place : string;
  year : int;
  camera : string;
  caption : string;
  pixels : string;
}

type email = {
  email_path : string;
  sender : string;
  recipient : string;
  subject : string;
  body : string;
  email_year : int;
}

type source_file = { source_path : string; code : string }

let zipf_pick rng z arr = arr.(Zipf.sample z rng mod Array.length arr)

let sentence rng z ~words =
  let buf = Buffer.create (words * 8) in
  for i = 0 to words - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (zipf_pick rng z Words.common)
  done;
  Buffer.contents buf

let photos ?(pixel_bytes = 512) rng ~count =
  let z_people = Zipf.create ~n:(Array.length Words.people) ~s:1.0 in
  let z_places = Zipf.create ~n:(Array.length Words.places) ~s:1.0 in
  let z_words = Zipf.create ~n:(Array.length Words.common) ~s:1.0 in
  List.init count (fun i ->
      let year = 2000 + Rng.int rng 10 in
      let place = zipf_pick rng z_places Words.places in
      let n_people = 1 + Rng.int rng 3 in
      let people =
        List.sort_uniq compare
          (List.init n_people (fun _ -> zipf_pick rng z_people Words.people))
      in
      let camera = Rng.choice rng Words.cameras in
      let caption =
        Printf.sprintf "%s with %s in %s %d"
          (sentence rng z_words ~words:3)
          (String.concat " and " people)
          place year
      in
      (* Pseudo-pixels: 64 windows of per-photo random intensity with a
         little noise. Distinct photos get distinct average-hashes, while
         a lightly perturbed copy of the same pixels hashes nearby. *)
      let levels = Array.init 64 (fun _ -> Rng.int rng 230) in
      let window = max 1 (pixel_bytes / 64) in
      let pixels =
        String.init pixel_bytes (fun j ->
            Char.chr (levels.(min 63 (j / window)) + Rng.int rng 16))
      in
      {
        photo_path =
          Printf.sprintf "/photos/%d/%s/img_%05d.jpg" year place i;
        people;
        place;
        year;
        camera;
        caption;
        pixels;
      })

let emails rng ~count =
  let z_people = Zipf.create ~n:(Array.length Words.people) ~s:1.1 in
  let z_topics = Zipf.create ~n:(Array.length Words.topics) ~s:1.0 in
  let z_words = Zipf.create ~n:(Array.length Words.common) ~s:1.0 in
  List.init count (fun i ->
      let sender = zipf_pick rng z_people Words.people in
      let recipient = zipf_pick rng z_people Words.people in
      let topic = zipf_pick rng z_topics Words.topics in
      let year = 2005 + Rng.int rng 5 in
      {
        email_path =
          Printf.sprintf "/home/%s/mail/%d/msg_%06d.eml" recipient year i;
        sender;
        recipient;
        subject = Printf.sprintf "%s %s" topic (zipf_pick rng z_words Words.common);
        body =
          Printf.sprintf "from %s about the %s: %s" sender topic
            (sentence rng z_words ~words:(10 + Rng.int rng 30));
        email_year = year;
      })

let source_tree rng ~files =
  let z_ident = Zipf.create ~n:(Array.length Words.identifiers) ~s:0.9 in
  List.init files (fun i ->
      let depth = 1 + Rng.int rng 3 in
      let dirs =
        List.init depth (fun _ -> Rng.choice rng Words.identifiers)
      in
      let ext = Rng.choice rng Words.extensions in
      let name = Printf.sprintf "%s_%04d.%s" (zipf_pick rng z_ident Words.identifiers) i ext in
      let body = Buffer.create 256 in
      for _ = 0 to 20 + Rng.int rng 40 do
        Buffer.add_string body (zipf_pick rng z_ident Words.identifiers);
        Buffer.add_char body (if Rng.bool rng then ' ' else '\n')
      done;
      {
        source_path = "/src/" ^ String.concat "/" dirs ^ "/" ^ name;
        code = Buffer.contents body;
      })
