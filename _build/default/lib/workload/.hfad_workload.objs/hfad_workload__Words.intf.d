lib/workload/words.mli:
