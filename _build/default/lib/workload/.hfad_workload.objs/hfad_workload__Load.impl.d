lib/workload/load.ml: Corpus Hfad Hfad_hierfs Hfad_index Hfad_posix List
