lib/workload/corpus.mli: Hfad_util
