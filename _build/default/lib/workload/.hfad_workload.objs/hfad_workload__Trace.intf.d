lib/workload/trace.mli: Corpus Format Hfad_hierfs Hfad_posix Hfad_util
