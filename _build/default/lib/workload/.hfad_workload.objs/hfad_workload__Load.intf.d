lib/workload/load.mli: Corpus Hfad_hierfs Hfad_osd Hfad_posix
