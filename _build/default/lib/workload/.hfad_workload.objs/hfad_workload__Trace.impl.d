lib/workload/trace.ml: Array Corpus Format Hfad Hfad_hierfs Hfad_index Hfad_posix Hfad_util List String
