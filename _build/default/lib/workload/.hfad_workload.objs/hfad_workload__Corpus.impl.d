lib/workload/corpus.ml: Array Buffer Char Hfad_util List Printf String Words
