lib/workload/words.ml:
