(** Per-directory lock table with contention accounting.

    §2.3: "the directories /home/nick and /home/margo are functionally
    unrelated most of the time, yet accessing them requires synchronizing
    read access through a shared ancestor directory."

    Every directory the path walk touches is locked for the duration of
    its entry lookup (the per-dentry serialization real kernels perform).
    The table records, exactly:

    - [acquisitions] — how many locks were taken in total;
    - [waits] — how many acquisitions found the lock already held
      (i.e. genuine cross-thread contention, detected via [try_lock]).

    Experiment C2 reads both counters while domains hammer sibling
    subtrees in parallel. *)

type t

val create : unit -> t

val with_lock : t -> int -> (unit -> 'a) -> 'a
(** [with_lock t ino f] runs [f] holding the lock of directory [ino]
    (locks are created on first use and never discarded). *)

val acquisitions : t -> int
val waits : t -> int
val reset_stats : t -> unit
