module Codec = Hfad_util.Codec

type kind = File | Dir

type t = {
  ino : int;
  kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable mtime : int64;
  mutable dir_root : int;
  direct : int array;
  mutable indirect : int;
  mutable double_indirect : int;
}

let n_direct = 12

let make ~ino ~kind =
  {
    ino;
    kind;
    size = 0;
    nlink = 1;
    mtime = 0L;
    dir_root = -1;
    direct = Array.make n_direct (-1);
    indirect = -1;
    double_indirect = -1;
  }

(* Pointers are stored +1 so that -1 (none) encodes as 0 in a u32. *)
let encode t =
  let buf = Bytes.create (8 + 1 + 8 + 8 + 8 + 4 + (4 * n_direct) + 8) in
  Codec.put_i64 buf 0 (Int64.of_int t.ino);
  Codec.put_u8 buf 8 (match t.kind with File -> 0 | Dir -> 1);
  Codec.put_i64 buf 9 (Int64.of_int t.size);
  Codec.put_i64 buf 17 (Int64.of_int t.nlink);
  Codec.put_i64 buf 25 t.mtime;
  Codec.put_u32 buf 33 (t.dir_root + 1);
  Array.iteri (fun i p -> Codec.put_u32 buf (37 + (4 * i)) (p + 1)) t.direct;
  Codec.put_u32 buf (37 + (4 * n_direct)) (t.indirect + 1);
  Codec.put_u32 buf (41 + (4 * n_direct)) (t.double_indirect + 1);
  Bytes.unsafe_to_string buf

let decode s =
  let buf = Bytes.unsafe_of_string s in
  try
    let ino = Int64.to_int (Codec.get_i64 buf 0) in
    let kind =
      match Codec.get_u8 buf 8 with
      | 0 -> File
      | 1 -> Dir
      | k -> Fmt.failwith "Inode.decode: unknown kind %d" k
    in
    let size = Int64.to_int (Codec.get_i64 buf 9) in
    let nlink = Int64.to_int (Codec.get_i64 buf 17) in
    let mtime = Codec.get_i64 buf 25 in
    let dir_root = Codec.get_u32 buf 33 - 1 in
    let direct =
      Array.init n_direct (fun i -> Codec.get_u32 buf (37 + (4 * i)) - 1)
    in
    let indirect = Codec.get_u32 buf (37 + (4 * n_direct)) - 1 in
    let double_indirect = Codec.get_u32 buf (41 + (4 * n_direct)) - 1 in
    {
      ino;
      kind;
      size;
      nlink;
      mtime;
      dir_root;
      direct;
      indirect;
      double_indirect;
    }
  with Invalid_argument _ -> failwith "Inode.decode: truncated inode"

let max_file_blocks ~block_size =
  let ptrs = block_size / 4 in
  n_direct + ptrs + (ptrs * ptrs)
