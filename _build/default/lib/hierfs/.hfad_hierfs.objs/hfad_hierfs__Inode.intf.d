lib/hierfs/inode.mli:
