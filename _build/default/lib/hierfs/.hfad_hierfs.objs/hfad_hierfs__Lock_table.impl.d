lib/hierfs/lock_table.ml: Atomic Hashtbl Mutex
