lib/hierfs/hierfs.ml: Array Bytes Format Hashtbl Hfad_alloc Hfad_blockdev Hfad_btree Hfad_metrics Hfad_pager Hfad_util Inode Int64 List Lock_table Option Printf String
