lib/hierfs/lock_table.mli:
