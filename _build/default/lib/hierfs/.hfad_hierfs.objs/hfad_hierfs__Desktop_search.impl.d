lib/hierfs/desktop_search.ml: Hfad_btree Hfad_fulltext Hierfs List String
