lib/hierfs/desktop_search.mli: Hierfs
