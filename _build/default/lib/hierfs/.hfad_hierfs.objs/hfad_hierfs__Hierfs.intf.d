lib/hierfs/hierfs.mli: Hfad_alloc Hfad_blockdev Hfad_btree Hfad_pager Inode
