lib/hierfs/inode.ml: Array Bytes Fmt Hfad_util Int64
