(** Inodes for the hierarchical baseline file system.

    Classic FFS shape (McKusick et al. 1984, the paper's reference
    [13]): fixed metadata plus a block map of 12 direct pointers, one
    single-indirect and one double-indirect pointer. Reading a byte deep
    in a large file therefore costs extra {e physical-index} page reads —
    one of the four-plus index traversals §2.3 counts against the
    hierarchical stack.

    Directories store the root page of their entry B-tree in
    [dir_root] and leave the block map empty. *)

type kind = File | Dir

type t = {
  ino : int;
  kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable mtime : int64;
  mutable dir_root : int;          (** directory entry B-tree root; -1 for files *)
  direct : int array;              (** 12 direct block pointers; -1 = hole *)
  mutable indirect : int;          (** block of pointers; -1 = none *)
  mutable double_indirect : int;   (** block of pointer blocks; -1 = none *)
}

val n_direct : int
(** 12 *)

val make : ino:int -> kind:kind -> t

val encode : t -> string
val decode : string -> t
(** @raise Failure on malformed input. *)

val max_file_blocks : block_size:int -> int
(** Largest representable file in blocks for a given block size. *)
