(** The "desktop search" stack over the hierarchical baseline — the
    system §2.3 dissects.

    "Consider the path between a search term and a data block in most
    systems today. First, we look up the search term in an indexing
    system... Translating from search term to the file in which it is
    found requires traversing two indices: the search index and the
    physical index... That search yields a {e file name}. We now navigate
    the hierarchical namespace... Finally... one last index traversal of
    the physical structure of that file. At a minimum, we encountered
    four index traversals."

    This module is that architecture, deliberately: an inverted index
    that maps terms to {e pathnames} (like Spotlight/WDS/Beagle over a
    POSIX FS), so every hit must then be resolved through the namespace
    walk and the inode block map. Experiment C1 counts the traversals. *)

type t

val create : Hierfs.t -> t
(** An empty search index over a hierarchical file system; the index
    B-tree lives on the same device. *)

val index_file : t -> string -> unit
(** Read the file at [path] and index its content under its pathname. *)

val index_tree : t -> string -> int
(** Index every regular file under a directory; returns how many. *)

val search : t -> string -> string list
(** Pathnames of files containing the term (normalized through the
    tokenizer), sorted. Stage 1 of the stack only. *)

val search_and_read : t -> string -> bytes_per_hit:int -> (string * string) list
(** The full search-to-data-block path: look up the term, then for every
    hit walk the namespace, fetch the inode, traverse the block map and
    read the first [bytes_per_hit] bytes. Exactly the §2.3 sequence. *)

val indexed_files : t -> int
