(** Tags — Table 1 of the paper.

    "An object is named by one or more tag/value pairs. A tag tells hFAD
    how to interpret the value and in which of multiple indexes to search
    for the value." (§3.1.1)

    The six built-in tags are exactly the paper's:
    - [Posix]    — value is a full POSIX pathname (the compatibility veneer);
    - [Fulltext] — value is a search term;
    - [User]     — value is a logname (manual and application tagging);
    - [Udef]     — value is a free-form user annotation;
    - [App]      — value is the name of the application that produced the
                   object (the provenance-style use of [3]);
    - [Id]       — value is an object identifier: the fast path that
                   bypasses every index ("supporting object reference
                   caching inside applications").

    [Custom] covers §4's open question about arbitrary plug-in index
    types (our image index registers as [Custom "image"]). *)

type t =
  | Posix
  | Fulltext
  | User
  | Udef
  | App
  | Id
  | Custom of string

val builtin : t list
(** The six paper tags, [Custom] excluded. *)

val to_string : t -> string
(** Canonical upper-case name: ["POSIX"], ["FULLTEXT"], ...; custom tags
    render as their (upper-cased) name. *)

val of_string : string -> t
(** Case-insensitive parse; unknown names become [Custom].
    @raise Invalid_argument on the empty string or names containing
    ['/']. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val pp_pair : Format.formatter -> t * string -> unit
(** Renders ["TAG/value"], the notation the paper uses (e.g.
    ["POSIX/P"], ["FULLTEXT/S1"]). *)

val pair_of_string : string -> t * string
(** Parse ["TAG/value"]. @raise Invalid_argument if no ['/'] is
    present. *)
