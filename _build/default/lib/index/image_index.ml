module Oid = Hfad_osd.Oid

type t = { kv : Kv_index.t }

let create tree ~namespace = { kv = Kv_index.create tree ~namespace }
let kv t = t.kv

let hash_of_bytes payload =
  let n = String.length payload in
  if n = 0 then 0L
  else begin
    (* Mean intensity per window of n/64 bytes (at least 1). *)
    let means = Array.make 64 0. in
    let window = max 1 (n / 64) in
    for w = 0 to 63 do
      let start = w * window in
      if start < n then begin
        let stop = min n (start + window) in
        let sum = ref 0 in
        for i = start to stop - 1 do
          sum := !sum + Char.code payload.[i]
        done;
        means.(w) <- float_of_int !sum /. float_of_int (stop - start)
      end
    done;
    let global = Array.fold_left ( +. ) 0. means /. 64. in
    let hash = ref 0L in
    for w = 0 to 63 do
      if means.(w) > global then
        hash := Int64.logor !hash (Int64.shift_left 1L w)
    done;
    !hash
  end

let hash_to_value h = Printf.sprintf "%016Lx" h

let value_to_hash s =
  if String.length s <> 16 then invalid_arg "Image_index.value_to_hash: length";
  match Int64.of_string_opt ("0x" ^ s) with
  | Some h -> h
  | None -> invalid_arg "Image_index.value_to_hash: not hex"

let hamming a b =
  let rec popcount x acc =
    if x = 0L then acc
    else popcount (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  popcount (Int64.logxor a b) 0

let add_hash t oid h = Kv_index.add t.kv oid (hash_to_value h)
let add t oid payload = add_hash t oid (hash_of_bytes payload)
let remove t oid = ignore (Kv_index.drop_object t.kv oid)
let lookup_exact t h = Kv_index.lookup t.kv (hash_to_value h)

let lookup_near t h ~max_distance =
  Kv_index.fold_values t.kv ~init:[] (fun acc value oid ->
      let d = hamming h (value_to_hash value) in
      if d <= max_distance then (oid, d) :: acc else acc)
  |> List.sort (fun (oa, da) (ob, db) ->
         match compare da db with 0 -> Oid.compare oa ob | c -> c)

let hash_of t oid =
  match Kv_index.values_of t.kv oid with
  | value :: _ -> Some (value_to_hash value)
  | [] -> None
