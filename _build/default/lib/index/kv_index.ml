module Btree = Hfad_btree.Btree
module Oid = Hfad_osd.Oid
module Strx = Hfad_util.Strx

exception Value_not_indexable of string

type t = { tree : Btree.t; fwd : string; rev : string; max_value_len : int }

let create tree ~namespace =
  if String.contains namespace '\001' || String.contains namespace '\002' then
    invalid_arg "Kv_index.create: reserved byte in namespace";
  {
    tree;
    fwd = namespace ^ "\001";
    rev = namespace ^ "\002";
    (* forward key = ns + 1 + value + 1 (separator) + 8 (oid) *)
    max_value_len = Btree.max_key_size tree - String.length namespace - 10;
  }

let max_value_len t = t.max_value_len

let check_value t value =
  if String.contains value '\000' then raise (Value_not_indexable value);
  if String.length value > t.max_value_len then raise (Value_not_indexable value)

let fwd_key t value oid = t.fwd ^ value ^ "\000" ^ Oid.to_key oid
let rev_key t oid value = t.rev ^ Oid.to_key oid ^ value

(* Forward key -> (value, oid). *)
let split_fwd t k =
  let payload = String.sub k (String.length t.fwd) (String.length k - String.length t.fwd) in
  (* The oid is the 8 trailing bytes; the '\000' separator precedes it.
     Values contain no '\000', so this parse is unambiguous. *)
  let n = String.length payload in
  (String.sub payload 0 (n - 9), Oid.of_key (String.sub payload (n - 8) 8))

let add t oid value =
  check_value t value;
  Btree.put t.tree ~key:(fwd_key t value oid) ~value:"";
  Btree.put t.tree ~key:(rev_key t oid value) ~value:""

let remove t oid value =
  let existed = Btree.remove t.tree (fwd_key t value oid) in
  ignore (Btree.remove t.tree (rev_key t oid value));
  existed

let mem t oid value = Btree.mem t.tree (fwd_key t value oid)

let lookup t value =
  Btree.fold_prefix t.tree ~prefix:(t.fwd ^ value ^ "\000") ~init:[]
    (fun acc k _ -> snd (split_fwd t k) :: acc)
  |> List.rev

let lookup_prefix t prefix =
  Btree.fold_prefix t.tree ~prefix:(t.fwd ^ prefix) ~init:[] (fun acc k _ ->
      split_fwd t k :: acc)
  |> List.rev

let fold_values t ?lo ?hi ~init f =
  let lo = Option.map (fun v -> t.fwd ^ v) lo in
  let hi =
    match hi with
    | Some v -> Some (t.fwd ^ v)
    | None -> Strx.next_prefix t.fwd
  in
  Btree.fold_range t.tree ?lo:(Some (Option.value lo ~default:t.fwd)) ?hi ~init
    (fun acc k _ ->
      let value, oid = split_fwd t k in
      f acc value oid)

let values_of t oid =
  let prefix = t.rev ^ Oid.to_key oid in
  Btree.fold_prefix t.tree ~prefix ~init:[] (fun acc k _ ->
      String.sub k (String.length prefix) (String.length k - String.length prefix)
      :: acc)
  |> List.rev

let drop_object t oid =
  let values = values_of t oid in
  List.iter (fun value -> ignore (remove t oid value)) values;
  List.length values

let cardinal t =
  Btree.fold_prefix t.tree ~prefix:t.fwd ~init:0 (fun acc _ _ -> acc + 1)

let count_value t value =
  Btree.fold_prefix t.tree ~prefix:(t.fwd ^ value ^ "\000") ~init:0
    (fun acc _ _ -> acc + 1)

exception Capped of int

let count_value_capped t value ~cap =
  try
    Btree.fold_prefix t.tree ~prefix:(t.fwd ^ value ^ "\000") ~init:0
      (fun acc _ _ -> if acc + 1 >= cap then raise (Capped cap) else acc + 1)
  with Capped n -> n

let verify t =
  let fail fmt = Format.kasprintf failwith fmt in
  let fwd_pairs =
    Btree.fold_prefix t.tree ~prefix:t.fwd ~init:[] (fun acc k _ ->
        split_fwd t k :: acc)
  in
  List.iter
    (fun (value, oid) ->
      if not (Btree.mem t.tree (rev_key t oid value)) then
        fail "forward (%s, %a) lacks reverse entry" value Oid.pp oid)
    fwd_pairs;
  let rev_count =
    Btree.fold_prefix t.tree ~prefix:t.rev ~init:0 (fun acc k _ ->
        let payload =
          String.sub k (String.length t.rev) (String.length k - String.length t.rev)
        in
        let oid = Oid.of_key (String.sub payload 0 8) in
        let value = String.sub payload 8 (String.length payload - 8) in
        if not (Btree.mem t.tree (fwd_key t value oid)) then
          fail "reverse (%a, %s) lacks forward entry" Oid.pp oid value;
        acc + 1)
  in
  if rev_count <> List.length fwd_pairs then
    fail "forward/reverse cardinality mismatch: %d vs %d"
      (List.length fwd_pairs) rev_count
