(** Boolean queries over the index stores — §4's open question, answered.

    "How much should the index stores do? Should they support arbitrary
    boolean queries? Should they include full-fledged query optimizers?"

    This module implements arbitrary and/or/not combinations of tag/value
    pairs with a selectivity-driven planner:

    - [And] evaluates its cheapest conjunct first (per
      {!Index_store.selectivity}) and narrows, exactly like the flat
      conjunction path, with [Not] children applied last as set
      differences;
    - [Or] unions its children;
    - [Not] is only meaningful below an [And] that contains at least one
      positive term (a top-level or all-negative query would enumerate
      the universe; {!eval} rejects it with {!Unbounded_not}).

    A concrete syntax is provided for tools:

    {v
      query   := or
      or      := and ('|' and)*
      and     := factor ('&' factor)*
      factor  := '!' factor | '(' query ')' | TAG '/' value
    v}

    e.g. ["USER/margo & (UDEF/beach | UDEF/hawaii) & !APP/trash"]. *)

type t =
  | Pair of Tag.t * string
  | And of t list
  | Or of t list
  | Not of t

exception Unbounded_not of t
(** Raised by {!eval} when a [Not] is not guarded by a positive sibling. *)

exception Parse_error of string

val pair : Tag.t -> string -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t

val eval : Index_store.t -> t -> Hfad_osd.Oid.t list
(** Objects satisfying the query, ascending OID order.
    @raise Unbounded_not as described above. *)

val estimate : Index_store.t -> t -> int
(** The planner's result-size estimate (an upper bound for [And]/[Pair],
    a sum bound for [Or]). *)

val explain : Index_store.t -> t -> string
(** Multi-line rendering of the evaluation plan: each node with its
    selectivity estimate and the chosen conjunct order. *)

val of_string : string -> t
(** Parse the concrete syntax. @raise Parse_error. *)

val to_string : t -> string
(** Render back to (fully parenthesized) concrete syntax. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
