module Oid = Hfad_osd.Oid

type t =
  | Pair of Tag.t * string
  | And of t list
  | Or of t list
  | Not of t

exception Unbounded_not of t
exception Parse_error of string

let pair tag value = Pair (tag, value)
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let not_ q = Not q

(* --- sorted OID-list set algebra ------------------------------------------ *)

let inter a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs', y :: ys' ->
        let c = Oid.compare x y in
        if c = 0 then go xs' ys' (x :: acc)
        else if c < 0 then go xs' ys acc
        else go xs ys' acc
  in
  go a b []

let union a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs', y :: ys' ->
        let c = Oid.compare x y in
        if c = 0 then go xs' ys' (x :: acc)
        else if c < 0 then go xs' ys (x :: acc)
        else go xs ys' (y :: acc)
  in
  go a b []

let diff a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | x :: xs', y :: ys' ->
        let c = Oid.compare x y in
        if c = 0 then go xs' ys' acc
        else if c < 0 then go xs' ys (x :: acc)
        else go xs ys' acc
  in
  go a b []

(* --- planning ---------------------------------------------------------------- *)

let max_estimate = max_int / 4

let rec estimate store = function
  | Pair (tag, value) -> Index_store.selectivity store (tag, value)
  | And children ->
      (* Negations do not bound the result; take the min over positives. *)
      List.fold_left
        (fun acc child ->
          match child with
          | Not _ -> acc
          | q -> min acc (estimate store q))
        max_estimate children
  | Or children ->
      List.fold_left (fun acc q -> acc + estimate store q) 0 children
  | Not _ -> max_estimate

let rec eval store q =
  match q with
  | Pair (tag, value) -> Index_store.lookup store (tag, value)
  | Or children -> List.fold_left (fun acc c -> union acc (eval store c)) [] children
  | Not _ -> raise (Unbounded_not q)
  | And children ->
      let positives, negatives =
        List.partition (function Not _ -> false | _ -> true) children
      in
      if positives = [] then raise (Unbounded_not q);
      (* Cheapest positive first, narrowing as we go; negatives last. *)
      let ordered =
        positives
        |> List.map (fun c -> (estimate store c, c))
        |> List.sort compare
        |> List.map snd
      in
      let base =
        match ordered with
        | first :: rest ->
            List.fold_left
              (fun acc c ->
                match (acc, c) with
                | [], _ -> []
                | _, Pair (tag, value)
                  when estimate store c > 8 * List.length acc ->
                    (* probe candidates instead of scanning postings *)
                    List.filter
                      (fun oid -> Index_store.contains store oid (tag, value))
                      acc
                | _, _ -> inter acc (eval store c))
              (eval store first) rest
        | [] -> assert false
      in
      List.fold_left
        (fun acc c ->
          match (acc, c) with
          | [], _ -> []
          | _, Not inner -> diff acc (eval store inner)
          | _, _ -> assert false)
        base negatives

(* --- explain ---------------------------------------------------------------------- *)

let explain store q =
  let buf = Buffer.create 256 in
  let line depth fmt =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Format.kasprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let est q =
    let e = estimate store q in
    if e >= max_estimate then "?" else string_of_int e
  in
  let rec go depth q =
    match q with
    | Pair (tag, value) ->
        line depth "scan %s/%s (est %s)" (Tag.to_string tag) value (est q)
    | Or children ->
        line depth "union (est %s)" (est q);
        List.iter (go (depth + 1)) children
    | Not inner ->
        line depth "difference";
        go (depth + 1) inner
    | And children ->
        line depth "intersect, cheapest first (est %s)" (est q);
        let positives, negatives =
          List.partition (function Not _ -> false | _ -> true) children
        in
        let ordered =
          positives
          |> List.map (fun c -> (estimate store c, c))
          |> List.sort compare
          |> List.map snd
        in
        List.iter (go (depth + 1)) (ordered @ negatives)
  in
  go 0 q;
  Buffer.contents buf

(* --- concrete syntax ------------------------------------------------------------------- *)

let to_string q =
  let rec go = function
    | Pair (tag, value) -> Tag.to_string tag ^ "/" ^ value
    | And children -> "(" ^ String.concat " & " (List.map go children) ^ ")"
    | Or children -> "(" ^ String.concat " | " (List.map go children) ^ ")"
    | Not inner -> "!" ^ go inner
  in
  go q

let equal a b = a = b
let pp fmt q = Format.pp_print_string fmt (to_string q)

(* Recursive-descent parser over a tiny token stream. Values extend to
   the next delimiter; surrounding whitespace is trimmed. *)
type token = Tok_pair of Tag.t * string | Tok_and | Tok_or | Tok_not
           | Tok_open | Tok_close

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\n' in
  while !i < n do
    let c = input.[!i] in
    if is_space c then incr i
    else if c = '&' then (tokens := Tok_and :: !tokens; incr i)
    else if c = '|' then (tokens := Tok_or :: !tokens; incr i)
    else if c = '!' then (tokens := Tok_not :: !tokens; incr i)
    else if c = '(' then (tokens := Tok_open :: !tokens; incr i)
    else if c = ')' then (tokens := Tok_close :: !tokens; incr i)
    else begin
      (* a TAG/value atom: read until a delimiter *)
      let start = !i in
      while
        !i < n
        && not (List.mem input.[!i] [ '&'; '|'; '('; ')'; '!' ])
      do
        incr i
      done;
      let atom = String.trim (String.sub input start (!i - start)) in
      match Tag.pair_of_string atom with
      | tag, value -> tokens := Tok_pair (tag, value) :: !tokens
      | exception Invalid_argument _ ->
          raise (Parse_error (Printf.sprintf "expected TAG/value, got %S" atom))
    end
  done;
  List.rev !tokens

let of_string input =
  let tokens = ref (tokenize input) in
  let peek () = match !tokens with [] -> None | tok :: _ -> Some tok in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let rec parse_or () =
    let first = parse_and () in
    let rec loop acc =
      match peek () with
      | Some Tok_or ->
          advance ();
          loop (parse_and () :: acc)
      | _ -> acc
    in
    match loop [ first ] with [ single ] -> single | many -> Or (List.rev many)
  and parse_and () =
    let first = parse_factor () in
    let rec loop acc =
      match peek () with
      | Some Tok_and ->
          advance ();
          loop (parse_factor () :: acc)
      | _ -> acc
    in
    match loop [ first ] with [ single ] -> single | many -> And (List.rev many)
  and parse_factor () =
    match peek () with
    | Some Tok_not ->
        advance ();
        Not (parse_factor ())
    | Some Tok_open ->
        advance ();
        let inner = parse_or () in
        (match peek () with
        | Some Tok_close -> advance ()
        | _ -> raise (Parse_error "expected ')'"));
        inner
    | Some (Tok_pair (tag, value)) ->
        advance ();
        Pair (tag, value)
    | Some Tok_close -> raise (Parse_error "unexpected ')'")
    | Some (Tok_and | Tok_or) -> raise (Parse_error "unexpected operator")
    | None -> raise (Parse_error "unexpected end of query")
  in
  let q = parse_or () in
  match peek () with
  | None -> q
  | Some _ -> raise (Parse_error "trailing input")
