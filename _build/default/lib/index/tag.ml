type t =
  | Posix
  | Fulltext
  | User
  | Udef
  | App
  | Id
  | Custom of string

let builtin = [ Posix; Fulltext; User; Udef; App; Id ]

let to_string = function
  | Posix -> "POSIX"
  | Fulltext -> "FULLTEXT"
  | User -> "USER"
  | Udef -> "UDEF"
  | App -> "APP"
  | Id -> "ID"
  | Custom name -> String.uppercase_ascii name

let of_string s =
  if s = "" then invalid_arg "Tag.of_string: empty tag";
  if String.contains s '/' then invalid_arg "Tag.of_string: tag contains '/'";
  match String.uppercase_ascii s with
  | "POSIX" -> Posix
  | "FULLTEXT" -> Fulltext
  | "USER" -> User
  | "UDEF" -> Udef
  | "APP" -> App
  | "ID" -> Id
  | other -> Custom other

let equal a b = to_string a = to_string b
let compare a b = String.compare (to_string a) (to_string b)
let pp fmt t = Format.pp_print_string fmt (to_string t)
let pp_pair fmt (tag, value) = Format.fprintf fmt "%a/%s" pp tag value

let pair_of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg "Tag.pair_of_string: missing '/'"
  | Some i ->
      ( of_string (String.sub s 0 i),
        String.sub s (i + 1) (String.length s - i - 1) )
