(** Similarity index for image-like data — the paper's plug-in example.

    §3.2: "neither a full-text index nor a key/value store is likely to
    be suitable for image indexing", and §4 asks whether hFAD should
    "support arbitrary types of indexing through, for example, a plug-in
    model". This module is that plug-in, built for the simulated image
    payloads of the photo-library workload (we have no real image
    corpus — see DESIGN.md substitutions).

    The feature is a 64-bit {e average hash}: the byte stream is bucketed
    into 64 equal windows, each window's mean intensity is compared to
    the global mean, one bit per window. Near-duplicate payloads (small
    pixel perturbations) land within a small Hamming distance — the
    property real perceptual hashes (pHash/aHash) provide for photos.

    Storage reuses {!Kv_index} with the hash rendered as 16 hex digits,
    so exact-duplicate lookup is an index descent; similarity lookup
    scans the hash space and filters by Hamming distance. *)

type t

val create : Hfad_btree.Btree.t -> namespace:string -> t

val hash_of_bytes : string -> int64
(** The 64-bit average hash of a payload. Empty input hashes to 0. *)

val hash_to_value : int64 -> string
(** 16-digit lowercase hex, the value stored in the index. *)

val value_to_hash : string -> int64
(** @raise Invalid_argument on malformed input. *)

val hamming : int64 -> int64 -> int
(** Bit distance between two hashes. *)

val add : t -> Hfad_osd.Oid.t -> string -> unit
(** Index an object by the hash of its payload bytes. *)

val add_hash : t -> Hfad_osd.Oid.t -> int64 -> unit
(** Index a precomputed hash (workload generators use this). *)

val remove : t -> Hfad_osd.Oid.t -> unit
(** Drop all hashes recorded for the object. *)

val lookup_exact : t -> int64 -> Hfad_osd.Oid.t list
(** Objects whose payload hash is exactly this. *)

val lookup_near : t -> int64 -> max_distance:int -> (Hfad_osd.Oid.t * int) list
(** Objects within [max_distance] bits, sorted by distance then OID. *)

val hash_of : t -> Hfad_osd.Oid.t -> int64 option
(** The recorded hash of an object, if indexed. *)

val kv : t -> Kv_index.t
(** The underlying attribute index (for the store's generic plumbing). *)
