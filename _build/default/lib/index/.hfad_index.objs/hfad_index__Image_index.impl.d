lib/index/image_index.ml: Array Char Hfad_osd Int64 Kv_index List Printf String
