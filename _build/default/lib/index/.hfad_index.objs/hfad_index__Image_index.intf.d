lib/index/image_index.mli: Hfad_btree Hfad_osd Kv_index
