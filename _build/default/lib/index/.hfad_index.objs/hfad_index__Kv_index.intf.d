lib/index/kv_index.mli: Hfad_btree Hfad_osd
