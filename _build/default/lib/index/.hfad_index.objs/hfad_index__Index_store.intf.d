lib/index/index_store.mli: Hfad_fulltext Hfad_osd Image_index Tag
