lib/index/query.ml: Buffer Format Hfad_osd Index_store List Printf String Tag
