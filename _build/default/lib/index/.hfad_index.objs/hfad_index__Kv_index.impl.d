lib/index/kv_index.ml: Format Hfad_btree Hfad_osd Hfad_util List Option String
