lib/index/tag.mli: Format
