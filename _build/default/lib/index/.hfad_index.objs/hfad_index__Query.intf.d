lib/index/query.mli: Format Hfad_osd Index_store Tag
