lib/index/tag.ml: Format String
