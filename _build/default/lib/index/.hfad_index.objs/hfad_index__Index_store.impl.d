lib/index/index_store.ml: Hashtbl Hfad_btree Hfad_fulltext Hfad_metrics Hfad_osd Image_index Kv_index List String Tag
