(** Key/value string index — the workhorse behind POSIX, USER, UDEF, APP
    and custom attribute tags.

    "A key/value store suffices for simple attributes" (§3.2). One
    namespaced slice of a shared B-tree holds both directions of the
    association:

    - forward:  [ns '\001' value '\000' oid8] → [""] — who carries this
      value? (sorted by value, then OID: equality {e and} prefix lookups)
    - reverse:  [ns '\002' oid8 value] → [""] — which values does this
      object carry? (object deletion, introspection)

    Values may not contain ['\000'] (the value/OID separator) and are
    bounded by the backing tree's key budget. An object can carry many
    values and one value can name many objects — exactly the paper's
    "a data item may have many names, all equally useful". *)

type t

val create : Hfad_btree.Btree.t -> namespace:string -> t
(** A view over [tree]; distinct namespaces on one tree are independent
    indexes. The namespace must not contain ['\001'] or ['\002']. *)

val max_value_len : t -> int
(** Longest value this index accepts. *)

exception Value_not_indexable of string
(** Raised by {!add} for values with ['\000'] or over-long values. *)

val add : t -> Hfad_osd.Oid.t -> string -> unit
(** Associate (idempotent). *)

val remove : t -> Hfad_osd.Oid.t -> string -> bool
(** Dissociate; returns whether the association existed. *)

val mem : t -> Hfad_osd.Oid.t -> string -> bool

val lookup : t -> string -> Hfad_osd.Oid.t list
(** Objects carrying exactly this value, ascending OID. *)

val lookup_prefix : t -> string -> (string * Hfad_osd.Oid.t) list
(** [(value, oid)] pairs whose value starts with the prefix, in
    (value, OID) order — directory listings for the POSIX veneer. *)

val fold_values :
  t -> ?lo:string -> ?hi:string -> init:'a -> ('a -> string -> Hfad_osd.Oid.t -> 'a) -> 'a
(** Fold associations with value in [\[lo, hi)]. *)

val values_of : t -> Hfad_osd.Oid.t -> string list
(** Values carried by an object, sorted. *)

val drop_object : t -> Hfad_osd.Oid.t -> int
(** Remove every association of an object; returns how many there
    were. *)

val cardinal : t -> int
(** Total number of associations. *)

val count_value : t -> string -> int
(** Number of objects carrying a value (exact; O(count)). *)

val count_value_capped : t -> string -> cap:int -> int
(** [min cap (count_value t v)], stopping the scan at [cap] entries —
    the planner's selectivity estimator (ordering decisions never need
    more precision than the cap). *)

val verify : t -> unit
(** Forward and reverse directions must mirror each other.
    @raise Failure on violation. *)
