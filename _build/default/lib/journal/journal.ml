module Device = Hfad_blockdev.Device
module Codec = Hfad_util.Codec
module Crc32 = Hfad_util.Crc32

exception Journal_full of { needed_blocks : int; have_blocks : int }

let magic = "hFADJRN1"
let state_clean = 0
let state_committed = 1

type t = {
  dev : Device.t;
  first_block : int;
  blocks : int;
  block_size : int;
  mutable seq : int64;
}

(* --- header ----------------------------------------------------------- *)
(* magic(8) | seq i64 | state u8 | payload_len u32 | crc u32 *)

let write_header t ~state ~payload_len ~crc =
  let page = Bytes.make t.block_size '\000' in
  Bytes.blit_string magic 0 page 0 8;
  Codec.put_i64 page 8 t.seq;
  Codec.put_u8 page 16 state;
  Codec.put_u32 page 17 payload_len;
  Bytes.set_int32_be page 21 crc;
  Device.write_block t.dev t.first_block page;
  Device.flush t.dev

let read_header t =
  let page = Device.read_block t.dev t.first_block in
  if Bytes.sub_string page 0 8 <> magic then
    failwith "Journal.attach: bad magic";
  let seq = Codec.get_i64 page 8 in
  let state = Codec.get_u8 page 16 in
  let payload_len = Codec.get_u32 page 17 in
  let crc = Bytes.get_int32_be page 21 in
  (seq, state, payload_len, crc)

(* --- construction -------------------------------------------------------- *)

let mk dev ~first_block ~blocks =
  if blocks < 2 then invalid_arg "Journal: region too small";
  {
    dev;
    first_block;
    blocks;
    block_size = Device.block_size dev;
    seq = 0L;
  }

let format dev ~first_block ~blocks =
  let t = mk dev ~first_block ~blocks in
  write_header t ~state:state_clean ~payload_len:0 ~crc:0l;
  t

let attach dev ~first_block ~blocks =
  let t = mk dev ~first_block ~blocks in
  let seq, _, _, _ = read_header t in
  t.seq <- seq;
  t

let payload_capacity t = (t.blocks - 1) * t.block_size

let capacity_pages t =
  (* 4 (count) + per page (4 + block_size) *)
  (payload_capacity t - 4) / (4 + t.block_size)

(* --- raw payload I/O across the record blocks ------------------------------ *)

let write_payload t payload =
  let len = Bytes.length payload in
  let rec loop off block =
    if off < len then begin
      let chunk = min t.block_size (len - off) in
      let page = Bytes.make t.block_size '\000' in
      Bytes.blit payload off page 0 chunk;
      Device.write_block t.dev block page;
      loop (off + chunk) (block + 1)
    end
  in
  loop 0 (t.first_block + 1)

let read_payload t len =
  let payload = Bytes.create len in
  let rec loop off block =
    if off < len then begin
      let chunk = min t.block_size (len - off) in
      let page = Device.read_block t.dev block in
      Bytes.blit page 0 payload off chunk;
      loop (off + chunk) (block + 1)
    end
  in
  loop 0 (t.first_block + 1);
  payload

(* --- commit / recover -------------------------------------------------------- *)

let encode_batch t pages =
  let len = 4 + List.length pages * (4 + t.block_size) in
  let payload = Bytes.create len in
  Codec.put_u32 payload 0 (List.length pages);
  List.iteri
    (fun i (home, data) ->
      if Bytes.length data <> t.block_size then
        invalid_arg "Journal.commit: page size mismatch";
      let off = 4 + (i * (4 + t.block_size)) in
      Codec.put_u32 payload off home;
      Bytes.blit data 0 payload (off + 4) t.block_size)
    pages;
  payload

let decode_batch t payload =
  let count = Codec.get_u32 payload 0 in
  List.init count (fun i ->
      let off = 4 + (i * (4 + t.block_size)) in
      let home = Codec.get_u32 payload off in
      (home, Bytes.sub payload (off + 4) t.block_size))

let commit t pages =
  match pages with
  | [] -> ()
  | _ ->
      let payload = encode_batch t pages in
      let needed = 1 + ((Bytes.length payload + t.block_size - 1) / t.block_size) in
      if needed > t.blocks then
        raise (Journal_full { needed_blocks = needed; have_blocks = t.blocks });
      (* Write the record body first, then seal it with the header: a
         crash before the header write leaves state = clean. *)
      write_payload t payload;
      t.seq <- Int64.add t.seq 1L;
      let crc = Crc32.bytes payload ~pos:0 ~len:(Bytes.length payload) in
      write_header t ~state:state_committed ~payload_len:(Bytes.length payload)
        ~crc

let mark_clean t = write_header t ~state:state_clean ~payload_len:0 ~crc:0l

let recover t =
  let seq, state, payload_len, crc = read_header t in
  t.seq <- seq;
  if state <> state_committed then None
  else begin
    let payload = read_payload t payload_len in
    if Crc32.bytes payload ~pos:0 ~len:payload_len <> crc then
      failwith "Journal.recover: sealed record fails CRC";
    Some (decode_batch t payload)
  end

let sequence t = t.seq
