(** Physical write-ahead journal — crash-consistent checkpoints.

    §1 of the paper opens with file systems adopting database technology
    — "journaling (logging), transactions, btrees" — and §3.3 leaves the
    OSD's transactionality as "an implementation decision". This module
    makes that decision concrete with the classic NO-STEAL / FORCE
    scheme:

    - dirty pages never reach their home location between checkpoints
      (the pager runs in no-steal mode, see
      {!Hfad_pager.Pager.create});
    - a checkpoint first appends every dirty page to the journal region
      and seals it with a CRC-covered commit record, then writes the
      pages home, then marks the journal clean.

    A crash therefore leaves the device in one of three states, all
    recoverable: (1) journal clean → home locations are consistent as of
    the previous checkpoint; (2) journal partially written, commit seal
    absent or CRC bad → discard, home locations still consistent;
    (3) journal sealed, home writes possibly torn → {!recover} replays
    the journal, reproducing the checkpoint exactly (replay is
    idempotent).

    On-device layout (a dedicated block range):
    {v
    block 0:   header — magic, sequence number, state (clean/committed)
    block 1..: record — u32 page count, then per page (u32 home page no,
               payload), packed back-to-back; CRC-32 of everything in the
               header's commit word
    v} *)

type t

exception Journal_full of { needed_blocks : int; have_blocks : int }

val format : Hfad_blockdev.Device.t -> first_block:int -> blocks:int -> t
(** Initialize a clean journal in [\[first_block, first_block+blocks)].
    @raise Invalid_argument if the region is too small (< 2 blocks). *)

val attach : Hfad_blockdev.Device.t -> first_block:int -> blocks:int -> t
(** Attach to an existing journal region (call {!recover} next).
    @raise Failure on bad magic. *)

val capacity_pages : t -> int
(** Upper bound on the number of data pages one commit can carry. *)

val commit : t -> (int * Bytes.t) list -> unit
(** [commit t pages] durably records [(home_page, contents)] pairs and
    seals them. After [commit] returns, the batch will survive a crash.
    @raise Journal_full if the batch exceeds the region. An empty batch
    is a no-op. *)

val mark_clean : t -> unit
(** Declare the home locations up to date (checkpoint complete). *)

val recover : t -> (int * Bytes.t) list option
(** [None] if the journal is clean or unsealed (nothing to do);
    [Some pages] if a sealed, un-checkpointed commit exists — the caller
    must write the pages home and then {!mark_clean}.
    @raise Failure if a sealed record fails its CRC (double fault). *)

val sequence : t -> int64
(** Monotonic commit sequence number (diagnostics). *)
