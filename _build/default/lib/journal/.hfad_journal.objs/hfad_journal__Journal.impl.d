lib/journal/journal.ml: Bytes Hfad_blockdev Hfad_util Int64 List
