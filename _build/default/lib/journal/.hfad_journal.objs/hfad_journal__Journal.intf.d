lib/journal/journal.mli: Bytes Hfad_blockdev
