lib/pager/pager.ml: Bytes Format Hashtbl Hfad_blockdev List Mutex
