lib/pager/pager.mli: Bytes Format Hfad_blockdev
