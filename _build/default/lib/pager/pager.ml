module Device = Hfad_blockdev.Device

exception Cache_full

type frame = {
  buf : Bytes.t;
  mutable page_no : int;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_use : int;
}

type stats = { reads : int; hits : int; misses : int; write_backs : int }

type t = {
  dev : Device.t;
  capacity : int;
  no_steal : bool;
  frames : (int, frame) Hashtbl.t;  (* page_no -> resident frame *)
  mutex : Mutex.t;
  mutable tick : int;
  mutable reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable write_backs : int;
}

let create ?(cache_pages = 1024) ?(no_steal = false) dev =
  if cache_pages <= 0 then invalid_arg "Pager.create: cache_pages";
  {
    dev;
    capacity = cache_pages;
    no_steal;
    frames = Hashtbl.create (2 * cache_pages);
    mutex = Mutex.create ();
    tick = 0;
    reads = 0;
    hits = 0;
    misses = 0;
    write_backs = 0;
  }

let page_size t = Device.block_size t.dev
let pages t = Device.blocks t.dev
let device t = t.dev

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | result ->
      Mutex.unlock t.mutex;
      result
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let write_back t frame =
  if frame.dirty then begin
    Device.write_block t.dev frame.page_no frame.buf;
    frame.dirty <- false;
    t.write_backs <- t.write_backs + 1
  end

(* Evict the least-recently-used unpinned frame to make room. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 || (t.no_steal && frame.dirty) then best
        else
          match best with
          | Some b when b.last_use <= frame.last_use -> best
          | Some _ | None -> Some frame)
      t.frames None
  in
  match victim with
  | None -> raise Cache_full
  | Some frame ->
      write_back t frame;
      Hashtbl.remove t.frames frame.page_no

(* Find or load the frame for [page_no]; pins it before returning. *)
let acquire t page_no ~load =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      t.reads <- t.reads + 1;
      match Hashtbl.find_opt t.frames page_no with
      | Some frame ->
          t.hits <- t.hits + 1;
          frame.last_use <- t.tick;
          frame.pins <- frame.pins + 1;
          frame
      | None ->
          t.misses <- t.misses + 1;
          if Hashtbl.length t.frames >= t.capacity then evict_one t;
          let buf = Bytes.create (Device.block_size t.dev) in
          if load then Device.read_block_into t.dev page_no buf
          else Bytes.fill buf 0 (Bytes.length buf) '\000';
          let frame =
            { buf; page_no; dirty = not load; pins = 1; last_use = t.tick }
          in
          Hashtbl.replace t.frames page_no frame;
          frame)

let release t frame ~dirty =
  with_lock t (fun () ->
      frame.pins <- frame.pins - 1;
      if dirty then frame.dirty <- true)

let with_page t page_no f =
  let frame = acquire t page_no ~load:true in
  match f frame.buf with
  | result ->
      release t frame ~dirty:false;
      result
  | exception e ->
      release t frame ~dirty:false;
      raise e

let with_page_mut t page_no f =
  let frame = acquire t page_no ~load:true in
  match f frame.buf with
  | result ->
      release t frame ~dirty:true;
      result
  | exception e ->
      (* Conservatively keep the page dirty: the callback may have
         mutated the buffer before raising. *)
      release t frame ~dirty:true;
      raise e

let zero_page t page_no =
  let frame = acquire t page_no ~load:false in
  Bytes.fill frame.buf 0 (Bytes.length frame.buf) '\000';
  release t frame ~dirty:true

let dirty_pages t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun no frame acc ->
          if frame.dirty then (no, Bytes.copy frame.buf) :: acc else acc)
        t.frames [])
  |> List.sort compare

let flush t =
  with_lock t (fun () ->
      Hashtbl.iter (fun _ frame -> write_back t frame) t.frames);
  Device.flush t.dev

let invalidate t =
  with_lock t (fun () ->
      let victims =
        Hashtbl.fold
          (fun no frame acc -> if frame.pins = 0 then (no, frame) :: acc else acc)
          t.frames []
      in
      List.iter
        (fun (no, frame) ->
          write_back t frame;
          Hashtbl.remove t.frames no)
        victims)

let stats t =
  with_lock t (fun () ->
      { reads = t.reads; hits = t.hits; misses = t.misses;
        write_backs = t.write_backs })

let reset_stats t =
  with_lock t (fun () ->
      t.reads <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.write_backs <- 0)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "reads=%d hits=%d misses=%d write_backs=%d" s.reads
    s.hits s.misses s.write_backs
