lib/posix/path.ml: Hfad_util
