lib/posix/path.mli:
