lib/posix/posix_fs.ml: Format Hashtbl Hfad Hfad_index Hfad_osd List Path String
