lib/posix/posix_fs.mli: Format Hfad Hfad_osd
