(* Shared implementation lives in Hfad_util.Upath so the hierarchical
   baseline can normalize paths without depending on the veneer. *)
include Hfad_util.Upath
