(** POSIX path manipulation for the compatibility veneer.

    Paths are normalized before ever reaching an index, so that one
    logical name has exactly one stored spelling: absolute, ['/']
    separated, no empty / ["."] components, [".."] resolved lexically,
    no trailing slash (except the root itself). *)

val normalize : string -> string
(** [normalize p] canonicalizes [p]. Relative paths are interpreted
    against the root. Examples: ["//a//b/./../c"] → ["/a/c"];
    [""] → ["/"]; ["/.."] → ["/"]. *)

val parent : string -> string
(** Parent of a normalized path (["/"] is its own parent). *)

val basename : string -> string
(** Final component of a normalized path (["" ] for the root). *)

val join : string -> string -> string
(** [join dir name] appends one component and normalizes. *)

val components : string -> string list
(** Components of a normalized path, root excluded: ["/a/b"] →
    [\["a"; "b"\]]. *)

val depth : string -> int
(** Number of components. *)

val is_ancestor : ancestor:string -> string -> bool
(** Whether [ancestor] is a strict prefix directory of the path (both
    normalized). The root is an ancestor of everything but itself. *)

val replace_prefix : old_prefix:string -> new_prefix:string -> string -> string
(** Rewrite the leading directory of a normalized path (for directory
    rename). @raise Invalid_argument if the path is not under
    [old_prefix]. *)
