lib/blockdev/latency.mli:
