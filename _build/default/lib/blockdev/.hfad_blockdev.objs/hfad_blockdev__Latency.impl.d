lib/blockdev/latency.ml:
