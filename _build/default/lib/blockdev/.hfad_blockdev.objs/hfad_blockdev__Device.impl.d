lib/blockdev/device.ml: Array Bytes Char Format Fun Hashtbl Hfad_util Int32 Latency Mutex Printf Sys
