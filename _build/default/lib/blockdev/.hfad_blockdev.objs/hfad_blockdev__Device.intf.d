lib/blockdev/device.mli: Bytes Format Latency
