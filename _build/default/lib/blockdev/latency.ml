type t =
  | Zero
  | Ssd of { access_ns : int; per_byte_ns : int }
  | Hdd of { seek_ns : int; rotate_ns : int; per_byte_ns : int }

let zero = Zero
let default_ssd = Ssd { access_ns = 25_000; per_byte_ns = 1 }

let default_hdd =
  Hdd { seek_ns = 4_000_000; rotate_ns = 2_000_000; per_byte_ns = 8 }

let cost_ns t ~last_block ~block ~bytes =
  match t with
  | Zero -> 0
  | Ssd { access_ns; per_byte_ns } -> access_ns + (bytes * per_byte_ns)
  | Hdd { seek_ns; rotate_ns; per_byte_ns } ->
      let sequential =
        match last_block with Some last -> block = last + 1 | None -> false
      in
      let positioning = if sequential then 0 else seek_ns + rotate_ns in
      positioning + (bytes * per_byte_ns)
