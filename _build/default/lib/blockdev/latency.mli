(** Simulated device cost models.

    The paper's storage substrate is "stable storage" behind the OSD; we
    simulate it. Wall-clock would measure the host machine, not the
    design, so devices accumulate {e simulated} nanoseconds according to a
    model. Two models matter for the paper's arguments:

    - [hdd]: seek + rotational cost for non-sequential access — the world
      in which FFS-style directory clustering (§2.2) was designed;
    - [ssd]: flat per-access cost — Stein's observation (cited in §2.2)
      that clustering wins are illusory on modern substrates.

    Costs are deliberately round numbers; experiments compare shapes and
    ratios, never absolute values. *)

type t =
  | Zero  (** no cost; pure structural counting *)
  | Ssd of { access_ns : int; per_byte_ns : int }
  | Hdd of { seek_ns : int; rotate_ns : int; per_byte_ns : int }

val zero : t

val default_ssd : t
(** 25 us access, ~0.4 ns/byte (≈2.5 GB/s). *)

val default_hdd : t
(** 4 ms seek + 2 ms average rotation for a discontiguous access,
    ~8 ns/byte (≈125 MB/s) streaming. *)

val cost_ns : t -> last_block:int option -> block:int -> bytes:int -> int
(** [cost_ns model ~last_block ~block ~bytes] is the simulated cost of
    accessing [bytes] bytes at block [block] when the previous access
    ended at [last_block]. Sequential HDD accesses ([block = last + 1])
    skip the seek and rotation terms. *)
