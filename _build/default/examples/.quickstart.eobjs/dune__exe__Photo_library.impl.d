examples/photo_library.ml: Format Hfad Hfad_blockdev Hfad_index Hfad_osd Hfad_posix Hfad_util Hfad_workload List String
