examples/email_search.mli:
