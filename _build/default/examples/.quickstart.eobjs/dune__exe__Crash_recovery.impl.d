examples/crash_recovery.ml: Filename Format Hfad Hfad_blockdev Hfad_index Hfad_posix Sys
