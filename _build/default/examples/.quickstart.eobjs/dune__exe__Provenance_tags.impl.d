examples/provenance_tags.ml: Format Hfad Hfad_blockdev Hfad_index Hfad_osd List
