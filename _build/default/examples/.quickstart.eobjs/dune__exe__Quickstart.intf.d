examples/quickstart.mli:
