examples/photo_library.mli:
