examples/email_search.ml: Format Hfad Hfad_blockdev Hfad_hierfs Hfad_index Hfad_metrics Hfad_posix Hfad_util Hfad_workload List Option Unix
