examples/quickstart.ml: Format Hfad Hfad_blockdev Hfad_index Hfad_osd Hfad_posix List String
