examples/provenance_tags.mli:
