(* hfadctl — command-line front end for hFAD images.

   A persistent hFAD file system lives in a sparse image file; every
   subcommand loads the image, performs its operation through the native
   or POSIX API, and (for mutations) writes the image back.

     hfadctl mkfs disk.img
     hfadctl put disk.img /notes/todo.txt "buy milk"
     hfadctl tag disk.img /notes/todo.txt UDEF errands
     hfadctl search disk.img milk
     hfadctl find disk.img UDEF/errands
     hfadctl ls disk.img /notes
     hfadctl cat disk.img /notes/todo.txt *)

module Device = Hfad_blockdev.Device
module Fs = Hfad.Fs
module Tag = Hfad_index.Tag
module Oid = Hfad_osd.Oid
module Meta = Hfad_osd.Meta
module P = Hfad_posix.Posix_fs
module Prometheus = Hfad_metrics.Prometheus
module Registry = Hfad_metrics.Registry
module Counter = Hfad_metrics.Counter
module Trace = Hfad_trace.Trace
module Server = Hfad_server.Server
module Client = Hfad_server.Client
module Wire = Hfad_server.Wire
open Cmdliner

let say fmt = Format.printf (fmt ^^ "@.")

(* --- plumbing ------------------------------------------------------------ *)

let with_image ?(write = false) image f =
  let dev = Device.load image in
  let fs = Fs.open_existing_exn ~config:(Fs.Config.v ~index_mode:Fs.Eager ()) dev in
  let posix = P.mount fs in
  let result = f fs posix in
  if write then begin
    Fs.sync_exn ~mode:`Checkpoint fs;
    Device.save dev image
  end;
  P.unmount posix;
  result

let with_client host port f =
  let c = Client.connect ~host ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let remote_ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Client.pp_error e)

let handle_errors f =
  try
    f ();
    0
  with
  | P.Error (errno, ctx) ->
      Format.eprintf "error: %a: %s@." P.pp_errno errno ctx;
      1
  | Device.Io_error msg | Failure msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Invalid_argument msg ->
      Format.eprintf "invalid argument: %s@." msg;
      1

(* --- arguments ------------------------------------------------------------ *)

let image_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc:"Image file.")

let path_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"PATH" ~doc:"POSIX path.")

let pair_conv =
  let parse s =
    match Tag.pair_of_string s with
    | pair -> Ok pair
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt pair -> Tag.pp_pair fmt pair)

(* --- commands ---------------------------------------------------------------- *)

let mkfs image blocks block_size shards =
  handle_errors (fun () ->
      let dev = Device.create ~block_size ~blocks () in
      let fs = Fs.format ~config:{ Fs.Config.default with Fs.Config.shards } dev in
      let _ = P.mount fs in
      Fs.sync_exn ~mode:`Checkpoint fs;
      Device.save dev image;
      say "formatted %s: %d blocks x %d bytes%s" image blocks block_size
        (if shards > 1 then Printf.sprintf ", %d shards" shards else ""))

let mkfs_cmd =
  let blocks =
    Arg.(value & opt int 65536 & info [ "blocks" ] ~doc:"Device size in blocks.")
  in
  let block_size =
    Arg.(value & opt int 4096 & info [ "block-size" ] ~doc:"Block size in bytes.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:
               "Partition the image into N independent OSD shards behind \
                the OID router (1 = the classic unsharded layout).")
  in
  Cmd.v (Cmd.info "mkfs" ~doc:"Create and format a new image.")
    Term.(const mkfs $ image_arg $ blocks $ block_size $ shards)

let put image path data =
  handle_errors (fun () ->
      with_image ~write:true image (fun _fs posix ->
          P.mkdir_p_exn posix (Hfad_posix.Path.parent path);
          P.write_file_exn posix path data;
          say "wrote %d bytes to %s" (String.length data) path))

let put_cmd =
  let data =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"DATA" ~doc:"Content.")
  in
  Cmd.v (Cmd.info "put" ~doc:"Write a file (create or replace).")
    Term.(const put $ image_arg $ path_arg 1 $ data)

let cat image path =
  handle_errors (fun () ->
      with_image image (fun _fs posix -> print_string (P.read_file posix path)))

let cat_cmd =
  Cmd.v (Cmd.info "cat" ~doc:"Print a file's content.")
    Term.(const cat $ image_arg $ path_arg 1)

let ls image path =
  handle_errors (fun () ->
      with_image image (fun _fs posix ->
          List.iter (fun name -> say "%s" name) (P.readdir posix path)))

let ls_cmd =
  Cmd.v (Cmd.info "ls" ~doc:"List a directory.")
    Term.(const ls $ image_arg $ path_arg 1)

let mkdir image path =
  handle_errors (fun () ->
      with_image ~write:true image (fun _fs posix -> P.mkdir_p_exn posix path))

let mkdir_cmd =
  Cmd.v (Cmd.info "mkdir" ~doc:"Create a directory (with parents).")
    Term.(const mkdir $ image_arg $ path_arg 1)

let rm image path =
  handle_errors (fun () ->
      with_image ~write:true image (fun _fs posix ->
          if P.is_directory posix path then P.rmdir_exn posix path
          else P.unlink_exn posix path))

let rm_cmd =
  Cmd.v (Cmd.info "rm" ~doc:"Remove a file or empty directory.")
    Term.(const rm $ image_arg $ path_arg 1)

let tag image path pair =
  handle_errors (fun () ->
      with_image ~write:true image (fun fs posix ->
          let tag, value = pair in
          let oid = P.resolve posix path in
          Fs.name_exn fs oid tag value;
          say "tagged %s with %s" path (Format.asprintf "%a" Tag.pp_pair pair)))

let pair_pos =
  Arg.(required & pos 2 (some pair_conv) None & info [] ~docv:"TAG/VALUE"
         ~doc:"Tag/value pair, e.g. UDEF/vacation.")

let tag_cmd =
  Cmd.v (Cmd.info "tag" ~doc:"Attach a tag/value name to a file.")
    Term.(const tag $ image_arg $ path_arg 1 $ pair_pos)

let untag image path pair =
  handle_errors (fun () ->
      with_image ~write:true image (fun fs posix ->
          let tag, value = pair in
          let oid = P.resolve posix path in
          if Fs.unname_exn fs oid tag value then say "untagged"
          else say "no such tag on %s" path))

let untag_cmd =
  Cmd.v (Cmd.info "untag" ~doc:"Remove a tag/value name from a file.")
    Term.(const untag $ image_arg $ path_arg 1 $ pair_pos)

let tags image path =
  handle_errors (fun () ->
      with_image image (fun fs posix ->
          let oid = P.resolve posix path in
          say "%s -> object %s" path (Oid.to_string oid);
          List.iter
            (fun pair -> say "  %s" (Format.asprintf "%a" Tag.pp_pair pair))
            (Fs.names_of fs oid)))

let tags_cmd =
  Cmd.v (Cmd.info "tags" ~doc:"List every name a file carries.")
    Term.(const tags $ image_arg $ path_arg 1)

let search image terms =
  handle_errors (fun () ->
      with_image image (fun fs _posix ->
          let hits = Fs.search fs (String.concat " " terms) in
          say "%d hit(s)" (List.length hits);
          List.iter
            (fun (oid, score) ->
              let posix_names =
                List.filter_map
                  (fun (tag, v) -> if Tag.equal tag Tag.Posix then Some v else None)
                  (Fs.names_of fs oid)
              in
              say "  [%.2f] %s %s" score (Oid.to_string oid)
                (String.concat ", " posix_names))
            hits))

let search_cmd =
  let terms =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"TERM" ~doc:"Search terms.")
  in
  Cmd.v (Cmd.info "search" ~doc:"Full-text search over file content.")
    Term.(const search $ image_arg $ terms)

let find image pairs =
  handle_errors (fun () ->
      with_image image (fun fs _posix ->
          let hits = Fs.lookup fs pairs in
          say "%d object(s)" (List.length hits);
          List.iter (fun oid -> say "  %s" (Oid.to_string oid)) hits))

let find_cmd =
  let pairs =
    Arg.(non_empty & pos_right 0 pair_conv [] & info [] ~docv:"TAG/VALUE"
           ~doc:"Tag/value pairs, conjoined.")
  in
  Cmd.v
    (Cmd.info "find" ~doc:"Naming lookup: conjunction of TAG/VALUE pairs.")
    Term.(const find $ image_arg $ pairs)

let mv image old_path new_path =
  handle_errors (fun () ->
      with_image ~write:true image (fun _fs posix ->
          P.rename_exn posix old_path new_path))

let mv_cmd =
  Cmd.v (Cmd.info "mv" ~doc:"Rename a file or directory subtree.")
    Term.(const mv $ image_arg $ path_arg 1 $ path_arg 2)

let ln image existing fresh =
  handle_errors (fun () ->
      with_image ~write:true image (fun _fs posix -> P.link_exn posix existing fresh))

let ln_cmd =
  Cmd.v (Cmd.info "ln" ~doc:"Hard link: one more POSIX name for a file.")
    Term.(const ln $ image_arg $ path_arg 1 $ path_arg 2)

let insert_bytes image path off data =
  handle_errors (fun () ->
      with_image ~write:true image (fun fs posix ->
          let oid = P.resolve posix path in
          Fs.insert_exn fs oid ~off data;
          say "inserted %d bytes at offset %d" (String.length data) off))

let insert_cmd =
  let off =
    Arg.(required & pos 2 (some int) None & info [] ~docv:"OFFSET"
           ~doc:"Byte offset.")
  in
  let data =
    Arg.(required & pos 3 (some string) None & info [] ~docv:"DATA" ~doc:"Bytes.")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"hFAD byte-granular insert into the middle of a file.")
    Term.(const insert_bytes $ image_arg $ path_arg 1 $ off $ data)

let compact image path =
  handle_errors (fun () ->
      with_image ~write:true image (fun fs posix ->
          (* Routed through Fs so the object's owner shard does the
             work, whatever the image's layout. *)
          let oid = P.resolve posix path in
          let before = Fs.extent_count fs oid in
          Fs.compact_exn fs oid;
          say "compacted: %d -> %d extents" before (Fs.extent_count fs oid)))

let compact_cmd =
  Cmd.v (Cmd.info "compact" ~doc:"Defragment a file's extents.")
    Term.(const compact $ image_arg $ path_arg 1)

let boolean_query image text expl =
  handle_errors (fun () ->
      with_image image (fun fs _posix ->
          let q = Hfad_index.Query.of_string text in
          if expl then
            print_string (Hfad_index.Query.explain (Fs.index fs) q);
          let hits = Fs.query fs q in
          say "%d object(s)" (List.length hits);
          List.iter (fun oid -> say "  %s" (Oid.to_string oid)) hits))

let query_cmd =
  let text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Boolean query, e.g. 'USER/margo & (UDEF/a | UDEF/b) & !APP/x'.")
  in
  let expl =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the evaluation plan.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Boolean naming query with and/or/not.")
    Term.(const boolean_query $ image_arg $ text $ expl)

let stat image path =
  handle_errors (fun () ->
      with_image image (fun _fs posix ->
          let meta = P.stat posix path in
          say "%s: %a" path Meta.pp meta;
          say "links: %d" (P.nlink posix path)))

let stat_cmd =
  Cmd.v (Cmd.info "stat" ~doc:"Show a file's metadata.")
    Term.(const stat $ image_arg $ path_arg 1)

let show_info image =
  handle_errors (fun () ->
      with_image image (fun fs posix ->
          let dev = Fs.device fs in
          say "device : %d blocks x %d bytes (%d KiB)" (Device.blocks dev)
            (Device.block_size dev)
            (Device.size_bytes dev / 1024);
          let n = Fs.shard_count fs in
          if n > 1 then say "shards : %d (oid-hash router)" n;
          say "objects: %d" (Fs.object_count fs);
          (* Allocation is per shard: each OSD owns its device region. *)
          for s = 0 to n - 1 do
            let osd = Fs.osd_of_shard fs s in
            let buddy = Hfad_osd.Osd.allocator osd in
            let stats = Hfad_alloc.Buddy.stats buddy in
            let label =
              if n > 1 then Printf.sprintf "shard%d " s else "space  "
            in
            say "%s: %d objects, %d / %d blocks free (fragmentation %.2f)"
              label
              (Hfad_osd.Osd.object_count osd)
              stats.Hfad_alloc.Buddy.free_blocks
              stats.Hfad_alloc.Buddy.total_blocks
              (Hfad_alloc.Buddy.fragmentation buddy)
          done;
          (* Span loss and ack lag are silent failures unless surfaced:
             a non-zero dropped count means any trace dump is missing
             spans, and a growing queue age means acks are outrunning
             their commits. *)
          say "trace  : %d dropped span(s), ring %d/%d" (Trace.dropped ())
            (Trace.ring_occupancy ()) (Trace.ring_capacity ());
          say "flusher: queue age %d us"
            (Counter.get (Registry.counter Registry.global "flusher.queue_age_us"));
          (* Resolution cache: resolve the whole namespace twice so the
             occupancy and hit-rate lines mean something in a fresh
             process (first pass fills, second pass hits). *)
          match P.pathcache_stats posix with
          | None -> ()
          | Some _ ->
              let paths = List.map fst (P.walk posix "/") in
              for _ = 1 to 2 do
                List.iter (fun p -> ignore (P.exists posix p)) paths
              done;
              (match P.pathcache_stats posix with
              | Some s ->
                  let module PC = Hfad_pathcache.Pathcache in
                  let looked = s.PC.hits + s.PC.misses in
                  say
                    "pathcache: %d entries, %d hits / %d lookups (hit rate \
                     %.0f%%)"
                    s.PC.entries s.PC.hits looked
                    (if looked = 0 then 100.0
                     else 100.0 *. float_of_int s.PC.hits /. float_of_int looked)
              | None -> ())))

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show image statistics.")
    Term.(const show_info $ image_arg)

let metrics image host port =
  handle_errors (fun () ->
      match (port, image) with
      | Some port, _ ->
          (* Remote scrape: the METRICS frame returns the *server
             process's* exposition — shard, pager, journal, flusher,
             trace and server families, while it serves. *)
          with_client host port (fun c ->
              print_string (remote_ok (Client.metrics c)))
      | None, Some image ->
          with_image image (fun _fs _posix -> print_string (Prometheus.expose ()))
      | None, None -> invalid_arg "metrics: need an IMAGE or --port")

let opt_image_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"IMAGE" ~doc:"Image file (omit with --port).")

let host_opt =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server host.")

let port_opt =
  Arg.(value & opt (some int) None
       & info [ "port" ]
           ~doc:"Scrape a running serve instance instead of opening an image.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump the metrics registry in Prometheus text exposition format \
          (counters, gauges, latency histograms) — from an image opened \
          in-process, or scraped from a live server with --port.")
    Term.(const metrics $ opt_image_arg $ host_opt $ port_opt)

(* Run one operation with span tracing on and print the resulting tree:
   every layer the operation crossed (fs, index, btree, pager, device,
   ...) with per-span latency — §2.3's index traversals, made visible. *)
let trace image op args host port =
  handle_errors (fun () ->
      let usage () =
        invalid_arg
          "usage: trace IMAGE (put PATH DATA | search TERM.. | cat PATH)  or  \
           trace --port PORT"
      in
      match port with
      | Some port ->
          (* Remote dump: the server's recent span ring as Chrome trace
             JSON (enable tracing with serve --trace). *)
          with_client host port (fun c ->
              print_string (remote_ok (Client.trace c)))
      | None ->
      let image = match image with Some i -> i | None -> usage () in
      let op = match op with Some o -> o | None -> usage () in
      let write = String.equal op "put" in
      with_image ~write image (fun fs posix ->
          Trace.set_enabled true;
          Fun.protect
            ~finally:(fun () -> Trace.set_enabled false)
            (fun () ->
              Trace.clear ();
              (* One root span so the whole operation lands in one tree. *)
              Trace.with_span ~layer:"ctl" ~op (fun () ->
                  match (op, args) with
                  | "put", [ path; data ] ->
                      P.mkdir_p_exn posix (Hfad_posix.Path.parent path);
                      P.write_file_exn posix path data
                  | "cat", [ path ] -> ignore (P.read_file posix path)
                  | "search", (_ :: _ as terms) ->
                      ignore (Fs.search fs (String.concat " " terms))
                  | _ -> usage ());
              match Trace.last_trace () with
              | Some tr -> Format.printf "%a" Trace.pp_trace tr
              | None -> say "no spans recorded")))

let trace_cmd =
  let op =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"OP"
           ~doc:"Operation to trace: put, search or cat.")
  in
  let args =
    Arg.(value & pos_right 1 string [] & info [] ~docv:"ARG"
           ~doc:"Operation arguments.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one put/search/cat with span tracing enabled and print the \
          span tree: each layer crossed, with per-span latency. With \
          --port, dump a live server's span ring as Chrome trace JSON \
          instead.")
    Term.(const trace $ opt_image_arg $ op $ args $ host_opt $ port_opt)

(* Serve an image over the wire protocol until SIGINT/SIGTERM, then
   flush and write the image back — the network front door as a
   process. *)
let serve image port workers sync trace_on slow_us =
  handle_errors (fun () ->
      let dev = Device.load image in
      let fs = Fs.open_existing_exn dev in
      if trace_on then Trace.set_enabled true;
      let config =
        Server.Config.v ~workers ~sync_ack:sync ~slow_threshold_us:slow_us ()
      in
      let server = Server.start ~config ~port fs in
      say "serving %s on 127.0.0.1:%d (%d worker domains, %s acks)" image
        (Server.port server) workers
        (if sync then "per-request" else "batched group-commit");
      if trace_on then say "span tracing on: scrape with 'trace --port %d'"
          (Server.port server);
      if slow_us > 0 then
        say "slow log on: requests >= %d us land in STATS" slow_us;
      say "stop with SIGINT; the image is flushed and saved on shutdown";
      let stop = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigint on_signal;
      Sys.set_signal Sys.sigterm on_signal;
      while not (Atomic.get stop) do
        try Unix.sleepf 0.2
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      let stats = Server.stats server in
      Server.stop server;
      Fs.sync_exn ~mode:`Checkpoint fs;
      Device.save dev image;
      Fs.close fs;
      say
        "served %d request(s) over %d connection(s) (%d batches, %d busy); \
         image saved"
        stats.Server.requests stats.Server.accepted stats.Server.batches
        stats.Server.busy)

let serve_cmd =
  let port =
    Arg.(value & opt int 7070
         & info [ "port" ] ~doc:"TCP port to bind on 127.0.0.1 (0 = ephemeral).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains.")
  in
  let sync =
    Arg.(value & flag
         & info [ "sync" ]
             ~doc:
               "Barrier after every mutation instead of batching acks into \
                one group commit per worker iteration (the slow baseline \
                bench S1 measures against).")
  in
  let trace_on =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:
               "Enable span tracing so a remote 'trace --port' dump (and \
                the STATS span counters) see this server's requests.")
  in
  let slow_us =
    Arg.(value & opt int 0
         & info [ "slow-us" ]
             ~doc:
               "Record requests at least this slow (microseconds, measured \
                around execute) in the slow-request log exported via \
                STATS; 0 disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve an image over the length-prefixed wire protocol \
          (PUT/GET/DELETE/TAG/SEARCH/STAT/FLUSH, plus the \
          STATS/METRICS/TRACE observability scrapes).")
    Term.(const serve $ image_arg $ port $ workers $ sync $ trace_on $ slow_us)

let ping host port count =
  handle_errors (fun () ->
      let c = Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rtts = List.init count (fun _ -> 1000. *. Client.ping c) in
          let sorted = List.sort compare rtts in
          say "%d ping(s) to %s:%d — min %.3f ms, median %.3f ms, max %.3f ms"
            count host port (List.nth sorted 0)
            (List.nth sorted (count / 2))
            (List.nth sorted (count - 1))))

let ping_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server host.")
  in
  let port =
    Arg.(required & opt (some int) None & info [ "port" ] ~doc:"Server port.")
  in
  let count =
    Arg.(value & opt int 5 & info [ "n"; "count" ] ~doc:"Pings to send.")
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:"Round-trip the wire protocol against a running serve instance.")
    Term.(const ping $ host $ port $ count)

(* --- remote observability: stats / top ----------------------------------- *)

let req_port =
  Arg.(required & opt (some int) None & info [ "port" ] ~doc:"Server port.")

(* Quantiles are bucket upper bounds; max_int means the mass sat past
   the last bound (10M us). *)
let qstr v = if v = max_int then ">10M" else string_of_int v

let print_op_table ?prev ~dt (s : Wire.Stats.t) =
  say "  %-8s %10s %8s %9s %8s %8s %8s" "op" "count" "ops/s" "mean_us" "p50"
    "p90" "p99";
  List.iter
    (fun (o : Wire.Stats.op_stat) ->
      let pcount, psum =
        match prev with
        | None -> (0, 0)
        | Some (p : Wire.Stats.t) -> (
            match List.find_opt (fun (q : Wire.Stats.op_stat) -> q.op = o.op) p.ops with
            | Some q -> (q.count, q.sum_us)
            | None -> (0, 0))
      in
      let dcount = o.count - pcount in
      if o.count > 0 then
        say "  %-8s %10d %8.1f %9.1f %8s %8s %8s" o.op o.count
          (if dt > 0. then float_of_int dcount /. dt else 0.)
          (if dcount > 0 then float_of_int (o.sum_us - psum) /. float_of_int dcount
           else 0.)
          (qstr o.p50_us) (qstr o.p90_us) (qstr o.p99_us))
    s.ops

let print_shard_table ?prev ~dt (s : Wire.Stats.t) =
  say "  %-8s %8s %8s %8s %10s %10s" "shard" "ckpts" "ckpt/s" "journal"
    "dirty" "resident";
  List.iter
    (fun (sh : Wire.Stats.shard_stat) ->
      let pckpt =
        match prev with
        | None -> sh.checkpoints
        | Some (p : Wire.Stats.t) -> (
            match
              List.find_opt
                (fun (q : Wire.Stats.shard_stat) -> q.shard = sh.shard)
                p.shards
            with
            | Some q -> q.checkpoints
            | None -> sh.checkpoints)
      in
      say "  %-8d %8d %8.1f %8d %10d %d/%d" sh.shard sh.checkpoints
        (if dt > 0. then float_of_int (sh.checkpoints - pckpt) /. dt else 0.)
        sh.journal_capacity_pages sh.dirty_pages sh.resident_pages
        sh.cache_pages)
    s.shards

let print_stats (s : Wire.Stats.t) =
  say "server : up %.1f s, %d connection(s), %d inflight"
    (float_of_int s.uptime_us /. 1e6)
    s.connections s.inflight;
  say "requests: %d (busy %d, errors %d)" s.requests s.busy s.errors;
  say "batches : %d (%d acked ops, avg batch %.2f)" s.batches s.batch_ops
    (if s.batches > 0 then float_of_int s.batch_ops /. float_of_int s.batches
     else 0.);
  say "bytes   : %d in, %d out" s.bytes_in s.bytes_out;
  say "trace   : %d span(s), %d dropped" s.trace_spans s.trace_dropped;
  say "flusher : queue age %d us" s.flusher_queue_age_us;
  say "per-op latency (us, since server start):";
  print_op_table ~dt:0. s;
  say "per-shard occupancy:";
  print_shard_table ~dt:0. s;
  if s.slow <> [] then begin
    say "slow requests (%d):" (List.length s.slow);
    List.iter (fun line -> say "  %s" line) s.slow
  end

let stats_remote host port =
  handle_errors (fun () ->
      with_client host port (fun c -> print_stats (remote_ok (Client.stats c))))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "One-shot scrape of a running serve instance's STATS snapshot: \
          per-op latency quantiles, batching, per-shard occupancy, slow \
          log.")
    Term.(const stats_remote $ host_opt $ req_port)

(* [top]: rates are deltas between two STATS snapshots — the server
   never computes a rate, so an idle dashboard costs it nothing. *)
let print_top ~host ~port ~interval prev (s : Wire.Stats.t) =
  let dt =
    match prev with
    | Some (p : Wire.Stats.t) -> float_of_int (s.uptime_us - p.uptime_us) /. 1e6
    | None -> 0.
  in
  let rate cur prv = if dt > 0. then float_of_int (cur - prv) /. dt else 0. in
  let d f = match prev with Some p -> f (p : Wire.Stats.t) | None -> 0 in
  say "hfadctl top — %s:%d   up %.1f s   refresh %.1f s%s" host port
    (float_of_int s.uptime_us /. 1e6)
    interval
    (if prev = None then "   (gathering rates...)" else "");
  say "conns %d   inflight %d   ops/s %.1f   busy/s %.1f   err/s %.1f"
    s.connections s.inflight
    (rate s.requests (d (fun p -> p.requests)))
    (rate s.busy (d (fun p -> p.busy)))
    (rate s.errors (d (fun p -> p.errors)));
  let dbatches = s.batches - d (fun p -> p.batches) in
  let dbatch_ops = s.batch_ops - d (fun p -> p.batch_ops) in
  say "batches/s %.1f   avg batch %.2f   bytes/s in %.0f out %.0f"
    (rate s.batches (d (fun p -> p.batches)))
    (if dbatches > 0 then float_of_int dbatch_ops /. float_of_int dbatches
     else 0.)
    (rate s.bytes_in (d (fun p -> p.bytes_in)))
    (rate s.bytes_out (d (fun p -> p.bytes_out)));
  say "trace spans %d (dropped %d)   flusher queue age %d us" s.trace_spans
    s.trace_dropped s.flusher_queue_age_us;
  print_op_table ?prev ~dt s;
  print_shard_table ?prev ~dt s;
  match List.rev s.slow with
  | [] -> ()
  | last :: _ -> say "slow: %s" last

let top host port interval count =
  handle_errors (fun () ->
      if interval <= 0. then invalid_arg "top: --interval must be positive";
      with_client host port (fun c ->
          let stop = Atomic.make false in
          (try
             Sys.set_signal Sys.sigint
               (Sys.Signal_handle (fun _ -> Atomic.set stop true))
           with Invalid_argument _ | Sys_error _ -> ());
          let prev = ref None in
          let shown = ref 0 in
          while (not (Atomic.get stop)) && (count = 0 || !shown < count) do
            let s = remote_ok (Client.stats c) in
            print_string "\027[2J\027[H";  (* clear screen, cursor home *)
            print_top ~host ~port ~interval !prev s;
            Format.print_flush ();
            flush stdout;
            prev := Some s;
            incr shown;
            if (count = 0 || !shown < count) && not (Atomic.get stop) then (
              try Unix.sleepf interval
              with Unix.Unix_error (Unix.EINTR, _, _) -> ())
          done))

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "n"; "count" ]
             ~doc:"Stop after N refreshes (0 = until SIGINT).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running serve instance: ops/s, \
          per-op p50/p99, batch size, BUSY rate and per-shard heat, \
          computed from successive STATS deltas.")
    Term.(const top $ host_opt $ req_port $ interval $ count)

let () =
  let doc = "tagged, search-based file system (hFAD) image tool" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "hfadctl" ~version:"1.0" ~doc)
          [
            mkfs_cmd; put_cmd; cat_cmd; ls_cmd; mkdir_cmd; rm_cmd; tag_cmd;
            untag_cmd; tags_cmd; search_cmd; find_cmd; query_cmd; stat_cmd;
            info_cmd; mv_cmd; ln_cmd; insert_cmd; compact_cmd; metrics_cmd;
            trace_cmd; serve_cmd; ping_cmd; stats_cmd; top_cmd;
          ]))
